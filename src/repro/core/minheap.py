"""Minimum-heap search: the GMD/GMU/GMS/GML measurement methodology.

Recommendation H2 requires heap sizes expressed as multiples of the
minimum heap in which a baseline collector can run the workload; that in
turn requires *finding* the minimum heap.  This module binary-searches the
smallest heap (to a configurable tolerance) in which a run completes —
i.e. does not raise :class:`~repro.jvm.heap.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from repro.jvm.cpu import DEFAULT_MACHINE, Machine
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.simulator import simulate_run
from repro.jvm.telemetry import FIDELITY_AGGREGATE


@dataclass(frozen=True)
class MinHeapResult:
    """Outcome of a minimum-heap search."""

    benchmark: str
    collector: str
    min_heap_mb: float
    iterations: int

    def as_multiple_of(self, minheap_mb: float) -> float:
        """This minimum expressed as a multiple of a nominal minimum."""
        return self.min_heap_mb / minheap_mb


def runs_in(
    spec,
    collector: str,
    heap_mb: float,
    iterations: int = 1,
    machine: Machine = DEFAULT_MACHINE,
    duration_scale: float = 1.0,
    fidelity: str = FIDELITY_AGGREGATE,
) -> bool:
    """True if the workload completes in ``heap_mb`` with ``collector``.

    Only the OOM-or-not outcome is consumed and that never depends on
    telemetry detail, so the run defaults to aggregate fidelity (the
    result object is discarded either way).
    """
    try:
        simulate_run(
            spec,
            collector,
            heap_mb,
            iterations=iterations,
            machine=machine,
            duration_scale=duration_scale,
            fidelity=fidelity,
        )
        return True
    except OutOfMemoryError:
        return False


def runs_in_batch(
    spec,
    collector: str,
    heap_mbs: Sequence[float],
    iterations: int = 1,
    machine: Machine = DEFAULT_MACHINE,
    duration_scale: float = 1.0,
) -> List[bool]:
    """Probe many heap sizes in one vectorized pass.

    The batched analogue of :func:`runs_in`: one
    :func:`~repro.jvm.batch.simulate_batch` call answers OOM-or-not for
    every candidate at once.  The answers are identical to per-heap
    :func:`runs_in` calls — the batch kernel reproduces the scalar
    path's OOM frontier exactly (messages byte-for-byte; see the
    equivalence contract in :mod:`repro.jvm.batch`).
    """
    from repro.jvm.batch import BatchCell, BatchSpec, simulate_batch

    batch = simulate_batch(
        BatchSpec(
            collector=collector,
            cells=tuple(BatchCell(spec=spec, heap_mb=h) for h in heap_mbs),
            iterations=iterations,
            machine=machine,
            duration_scale=duration_scale,
        )
    )
    return [outcome.ok for outcome in batch]


def _min_heap_search(
    spec,
    collector: str,
    tolerance: float = 0.02,
    upper_bound_mb: Optional[float] = None,
    probes: int = 1,
) -> Generator[List[float], List[bool], float]:
    """The minimum-heap probe schedule as a driver-agnostic generator.

    Yields lists of candidate heap sizes (MB) and expects the driver to
    ``send`` back one fit-or-not boolean per candidate; returns the final
    minimum via ``StopIteration.value``.  Both :func:`find_min_heap`
    (inline ``runs_in`` probes) and the engine-backed
    ``kind="minheap"`` experiment plan drive this same generator, so the
    two paths probe *identical* heap sizes in *identical* order and land
    on bit-identical minima — the schedule is the single source of truth.

    Raises :class:`OutOfMemoryError` when the upper bound itself fails,
    and ``ValueError`` (on first advance) for invalid knobs.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if probes < 1:
        raise ValueError("probes must be at least 1")
    high = upper_bound_mb if upper_bound_mb is not None else 16.0 * spec.minheap_mb
    fits = yield [high]
    if not fits[0]:
        raise OutOfMemoryError(
            f"{spec.name} cannot run with {collector} even at {high:.0f} MB"
        )
    # Half the declared live set is normally an infeasible heap, but the
    # binary search is only correct if ``low`` actually fails — verify the
    # bracket instead of assuming it, walking it down when a misdeclared
    # ``live_mb`` would otherwise silently inflate the reported minimum.
    low = spec.live_mb * 0.5
    while low > 0.0:
        fits = yield [low]
        if not fits[0]:
            break
        high = low
        low /= 2.0
        if high < 0.01:  # degenerate: effectively any heap runs it
            break
    while high - low > tolerance * high:
        if probes > 1:
            # K-section: all interior points decided in one batch.  The
            # minimum lies between the highest failing probe and the
            # lowest succeeding one (outcomes are monotone in heap size).
            width = (high - low) / (probes + 1)
            grid = [low + width * (k + 1) for k in range(probes)]
            fits = yield grid
            for heap_mb, ok in zip(grid, fits):
                if ok:
                    high = heap_mb
                    break
                low = heap_mb
        else:
            mid = (low + high) / 2.0
            fits = yield [mid]
            if fits[0]:
                high = mid
            else:
                low = mid
    return high


def find_min_heap(
    spec,
    collector: str,
    iterations: int = 1,
    tolerance: float = 0.02,
    machine: Machine = DEFAULT_MACHINE,
    duration_scale: float = 1.0,
    upper_bound_mb: Optional[float] = None,
    fidelity: str = FIDELITY_AGGREGATE,
    probes: int = 1,
) -> MinHeapResult:
    """Binary-search the minimum heap for ``spec`` with ``collector``.

    The search brackets the minimum between a heap that fails and one that
    succeeds, then narrows until the bracket is within ``tolerance``
    (relative).  Raises :class:`OutOfMemoryError` if even ``upper_bound_mb``
    (default 16x the nominal minimum) fails.

    The probe runs discard everything but the OOM outcome, so they run at
    aggregate fidelity by default — the reported minimum is identical at
    either tier because OOM detection never depends on telemetry detail.

    ``probes`` > 1 switches the narrowing phase from bisection to
    *K*-section through the vectorized batch kernel: each round splits
    the bracket into ``probes + 1`` equal sub-intervals and decides all
    ``probes`` interior points in one :func:`runs_in_batch` call, so the
    bracket shrinks ``(probes + 1)×`` per round instead of 2×.  Every
    probe answers exactly as the scalar path would (the OOM frontier is
    identical), so the result honours the same ``tolerance`` contract;
    the reported minimum may differ from bisection's within that bracket
    because the two searches probe different midpoints.

    The probe *schedule* lives in :func:`_min_heap_search`; this function
    merely answers each probe with an inline :func:`runs_in` call (or one
    :func:`runs_in_batch` call for multi-point K-section rounds).  The
    engine-backed ``kind="minheap"`` plan drives the identical schedule
    through cached, supervised cells and is pinned bit-identical to this
    search.
    """
    search = _min_heap_search(spec, collector, tolerance, upper_bound_mb, probes)
    fits: Optional[List[bool]] = None
    while True:
        try:
            heap_mbs = next(search) if fits is None else search.send(fits)
        except StopIteration as stop:
            return MinHeapResult(
                benchmark=spec.name,
                collector=collector,
                min_heap_mb=stop.value,
                iterations=iterations,
            )
        if len(heap_mbs) > 1:
            fits = runs_in_batch(
                spec, collector, heap_mbs, iterations, machine, duration_scale
            )
        else:
            fits = [
                runs_in(
                    spec,
                    collector,
                    heap_mbs[0],
                    iterations,
                    machine,
                    duration_scale,
                    fidelity,
                )
            ]
