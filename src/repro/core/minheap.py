"""Minimum-heap search: the GMD/GMU/GMS/GML measurement methodology.

Recommendation H2 requires heap sizes expressed as multiples of the
minimum heap in which a baseline collector can run the workload; that in
turn requires *finding* the minimum heap.  This module binary-searches the
smallest heap (to a configurable tolerance) in which a run completes —
i.e. does not raise :class:`~repro.jvm.heap.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.jvm.cpu import DEFAULT_MACHINE, Machine
from repro.jvm.heap import OutOfMemoryError
from repro.jvm.simulator import simulate_run
from repro.jvm.telemetry import FIDELITY_AGGREGATE


@dataclass(frozen=True)
class MinHeapResult:
    """Outcome of a minimum-heap search."""

    benchmark: str
    collector: str
    min_heap_mb: float
    iterations: int

    def as_multiple_of(self, minheap_mb: float) -> float:
        """This minimum expressed as a multiple of a nominal minimum."""
        return self.min_heap_mb / minheap_mb


def runs_in(
    spec,
    collector: str,
    heap_mb: float,
    iterations: int = 1,
    machine: Machine = DEFAULT_MACHINE,
    duration_scale: float = 1.0,
    fidelity: str = FIDELITY_AGGREGATE,
) -> bool:
    """True if the workload completes in ``heap_mb`` with ``collector``.

    Only the OOM-or-not outcome is consumed and that never depends on
    telemetry detail, so the run defaults to aggregate fidelity (the
    result object is discarded either way).
    """
    try:
        simulate_run(
            spec,
            collector,
            heap_mb,
            iterations=iterations,
            machine=machine,
            duration_scale=duration_scale,
            fidelity=fidelity,
        )
        return True
    except OutOfMemoryError:
        return False


def find_min_heap(
    spec,
    collector: str,
    iterations: int = 1,
    tolerance: float = 0.02,
    machine: Machine = DEFAULT_MACHINE,
    duration_scale: float = 1.0,
    upper_bound_mb: Optional[float] = None,
    fidelity: str = FIDELITY_AGGREGATE,
) -> MinHeapResult:
    """Binary-search the minimum heap for ``spec`` with ``collector``.

    The search brackets the minimum between a heap that fails and one that
    succeeds, then narrows until the bracket is within ``tolerance``
    (relative).  Raises :class:`OutOfMemoryError` if even ``upper_bound_mb``
    (default 16x the nominal minimum) fails.

    The probe runs discard everything but the OOM outcome, so they run at
    aggregate fidelity by default — the reported minimum is identical at
    either tier because OOM detection never depends on telemetry detail.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    high = upper_bound_mb if upper_bound_mb is not None else 16.0 * spec.minheap_mb
    if not runs_in(spec, collector, high, iterations, machine, duration_scale, fidelity):
        raise OutOfMemoryError(
            f"{spec.name} cannot run with {collector} even at {high:.0f} MB"
        )
    # Half the declared live set is normally an infeasible heap, but the
    # binary search is only correct if ``low`` actually fails — verify the
    # bracket instead of assuming it, walking it down when a misdeclared
    # ``live_mb`` would otherwise silently inflate the reported minimum.
    low = spec.live_mb * 0.5
    while low > 0.0 and runs_in(
        spec, collector, low, iterations, machine, duration_scale, fidelity
    ):
        high = low
        low /= 2.0
        if high < 0.01:  # degenerate: effectively any heap runs it
            break
    while high - low > tolerance * high:
        mid = (low + high) / 2.0
        if runs_in(spec, collector, mid, iterations, machine, duration_scale, fidelity):
            high = mid
        else:
            low = mid
    return MinHeapResult(
        benchmark=spec.name,
        collector=collector,
        min_heap_mb=high,
        iterations=iterations,
    )
