"""The simulated JVM substrate: machine, heap, collectors, simulator."""
