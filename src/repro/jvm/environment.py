"""Execution environments: the experiment axes of Section 6.1.3.

The paper characterizes each workload's sensitivity to its execution
environment by re-running it under controlled perturbations:

- **memory speed** — DDR5-4800 downclocked to DDR5-2000 (the PMS statistic),
- **last-level cache** — restricted to 1/16 capacity via cache-allocation
  enforcement (PLS),
- **frequency scaling** — enabling Core Performance Boost (PFS),
- **compiler configuration** — forced C2 (PCC), worst-vs-best configuration
  (PCS), or interpreter-only execution (PIN).

An :class:`EnvironmentProfile` describes one such configuration.  Workload
models respond through their published sensitivity coefficients (carried on
the spec); the harness then runs the *same* measurement methodology the
paper used and recovers those statistics — see
:mod:`repro.core.characterize`, which closes the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Compiler configurations the runtime can be pinned to.
COMPILER_MODES = ("tiered", "c2-only", "interpreter")

#: Processor designs the suite was characterized on (Section 6.4): the
#: baseline AMD Zen 4 (Ryzen 9 7950X), ARM Neoverse N1 (Ampere Altra
#: Q80-30), and Intel Golden Cove (i9-12900KF).
ARCHITECTURES = ("zen4", "neoverse-n1", "golden-cove")


@dataclass(frozen=True)
class EnvironmentSensitivity:
    """A workload's published environment sensitivities (percent effects).

    Field names follow the nominal statistics: ``pms`` percent slowdown
    with slow DRAM, ``pls`` percent slowdown at 1/16 LLC, ``pfs`` percent
    speedup with frequency boost, ``pcc`` percent slowdown under forced C2
    compilation, ``pin`` percent slowdown on the interpreter.
    """

    pms: float = 0.0
    pls: float = 0.0
    pfs: float = 0.0
    pcc: float = 0.0
    pin: float = 0.0
    #: Single-core slowdown on ARM Neoverse N1 vs Zen 4 (UAA) and on Intel
    #: Golden Cove vs Zen 4 (UAI); UAI can be negative (Intel faster).
    uaa: float = 0.0
    uai: float = 0.0

    def __post_init__(self) -> None:
        for name in ("pms", "pls", "pcc", "pin"):
            if getattr(self, name) < -5.0:
                raise ValueError(f"{name} is a slowdown percentage; {getattr(self, name)} is implausible")


@dataclass(frozen=True)
class EnvironmentProfile:
    """One execution-environment configuration.

    The default profile is the paper's baseline: full-speed DDR5-4800,
    full LLC, frequency scaling off, tiered compilation.
    """

    slow_memory: bool = False
    llc_fraction: float = 1.0
    frequency_boost: bool = False
    compiler: str = "tiered"
    architecture: str = "zen4"

    def __post_init__(self) -> None:
        if not 0.0 < self.llc_fraction <= 1.0:
            raise ValueError("llc_fraction must be in (0, 1]")
        if self.compiler not in COMPILER_MODES:
            raise ValueError(f"compiler must be one of {COMPILER_MODES}")
        if self.architecture not in ARCHITECTURES:
            raise ValueError(f"architecture must be one of {ARCHITECTURES}")

    def execution_time_factor(self, sensitivity: EnvironmentSensitivity) -> float:
        """Multiplier on a workload's intrinsic execution time.

        Effects compose multiplicatively, each driven by the workload's own
        sensitivity coefficient.  LLC restriction interpolates linearly in
        lost capacity toward the published 1/16-capacity slowdown.
        """
        factor = 1.0
        if self.slow_memory:
            factor *= 1.0 + max(sensitivity.pms, 0.0) / 100.0
        if self.llc_fraction < 1.0:
            lost = (1.0 - self.llc_fraction) / (1.0 - 1.0 / 16.0)
            factor *= 1.0 + max(sensitivity.pls, 0.0) / 100.0 * min(lost, 1.0)
        if self.frequency_boost:
            factor /= 1.0 + max(sensitivity.pfs, -50.0) / 100.0
        if self.compiler == "c2-only":
            factor *= 1.0 + max(sensitivity.pcc, 0.0) / 100.0
        elif self.compiler == "interpreter":
            factor *= 1.0 + max(sensitivity.pin, 0.0) / 100.0
        if self.architecture == "neoverse-n1":
            factor *= max(1.0 + sensitivity.uaa / 100.0, 0.1)
        elif self.architecture == "golden-cove":
            factor *= max(1.0 + sensitivity.uai / 100.0, 0.1)
        return factor


BASELINE_ENVIRONMENT = EnvironmentProfile()
SLOW_MEMORY = EnvironmentProfile(slow_memory=True)
SMALL_LLC = EnvironmentProfile(llc_fraction=1.0 / 16.0)
BOOSTED = EnvironmentProfile(frequency_boost=True)
FORCED_C2 = EnvironmentProfile(compiler="c2-only")
INTERPRETER_ONLY = EnvironmentProfile(compiler="interpreter")
ON_NEOVERSE_N1 = EnvironmentProfile(architecture="neoverse-n1")
ON_GOLDEN_COVE = EnvironmentProfile(architecture="golden-cove")
