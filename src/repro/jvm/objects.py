"""Object demographics: sizes and lifetimes.

DaCapo Chopin characterizes each workload's allocation behaviour with the
AOA/AOL/AOM/AOS nominal statistics (average / 90th / median / 10th percentile
object size) and its lifetime behaviour through the GC statistics (GCA, GCM,
GTO).  This module turns those published numbers into samplable
distributions so the simulated heap sees the same demographics the real
workload produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ObjectSizeDistribution:
    """A log-normal object-size model fitted to nominal percentiles.

    Parameters are the paper's per-workload statistics, in bytes:

    - ``average`` — AOA, nominal average object size
    - ``p90`` — AOL, 90th percentile size
    - ``median`` — AOM, median size
    - ``p10`` — AOS, 10th percentile size
    """

    average: float
    p90: float
    median: float
    p10: float

    def __post_init__(self) -> None:
        if min(self.average, self.p90, self.median, self.p10) <= 0:
            raise ValueError("object sizes must be positive")
        if not self.p10 <= self.median <= self.p90:
            raise ValueError("size percentiles must be ordered p10 <= median <= p90")

    @property
    def mu(self) -> float:
        """Log-space mean of the fitted log-normal (median-anchored)."""
        return float(np.log(self.median))

    @property
    def sigma(self) -> float:
        """Log-space standard deviation fitted to the p10–p90 spread.

        For a log-normal, ``ln p90 - ln p10 = 2 * z90 * sigma`` with
        ``z90 = 1.2816``.  Degenerate spreads (p10 == p90) fall back to a
        small positive sigma so sampling still works.
        """
        spread = float(np.log(self.p90) - np.log(self.p10))
        z90 = 1.2815515655446004
        return max(spread / (2.0 * z90), 0.05)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Sample ``n`` object sizes in bytes."""
        if n < 0:
            raise ValueError("cannot sample a negative number of objects")
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)

    def mean_of_model(self) -> float:
        """Analytic mean of the fitted log-normal, for sanity checks."""
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


@dataclass(frozen=True)
class LifetimeModel:
    """Weak-generational-hypothesis lifetime model.

    ``survival_rate`` is the fraction of freshly allocated bytes that
    survives a young collection; ``long_lived_fraction`` is the share of the
    survivors promoted into the long-lived live set.  Both are derived from
    the workload's GC statistics by the registry.
    """

    survival_rate: float
    long_lived_fraction: float

    def __post_init__(self) -> None:
        for name in ("survival_rate", "long_lived_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    def surviving_bytes(self, allocated_mb: float) -> float:
        """MB of ``allocated_mb`` that survive a young collection."""
        return allocated_mb * self.survival_rate

    def promoted_bytes(self, allocated_mb: float) -> float:
        """MB of ``allocated_mb`` promoted to the old generation."""
        return self.surviving_bytes(allocated_mb) * self.long_lived_fraction
