"""Barrier cost model: what collectors charge the mutator, per workload.

Every collector design instruments some subset of the mutator's memory
operations:

- **card-table write barriers** (Serial, Parallel) mark the card of every
  reference store;
- **SATB write barriers + remembered-set maintenance** (G1) additionally
  log overwritten values and cross-region references;
- **load-reference barriers** (Shenandoah) intercept every reference load
  to forward to-space pointers;
- **colored-pointer load barriers** (ZGC, GenZGC) test and heal loaded
  references.

How much these cost a *particular* workload depends on how often it
performs the instrumented operations — which is exactly what the suite's
bytecode-group nominal statistics measure: BPF (putfield/us), BAS
(aastore/us), BGF (getfield/us), BAL (aaload/us).  This module turns a
collector's barrier set and a workload's operation rates into a mutator
tax, anchored so the *suite-median* workload pays the collector's baseline
tax (the constants calibrated against the paper's Figure 1).

Workloads without bytecode statistics (tradebeans, tradesoap: the paper's
35-dimension benchmarks) fall back to the baseline tax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Suite-median operation rates (events per microsecond), computed from the
#: published bytecode statistics.  Anchoring on the median keeps the
#: Figure 1 calibration intact while spreading taxes across workloads.
MEDIAN_WRITE_RATE_PER_US = 98.5  # median of BPF + BAS
MEDIAN_READ_RATE_PER_US = 642.0  # median of BGF + BAL

#: Bounds on how far a workload's operation mix can move the barrier
#: portion of the tax relative to baseline.
MIN_BARRIER_SCALE = 0.5
MAX_BARRIER_SCALE = 1.8


@dataclass(frozen=True)
class BarrierSet:
    """A collector's barrier configuration.

    ``write_weight`` and ``read_weight`` apportion the collector's barrier
    overhead between store-side and load-side instrumentation; they sum to
    at most 1, with any remainder treated as operation-independent
    (allocation path, TLAB bump checks).
    """

    name: str
    write_weight: float
    read_weight: float

    def __post_init__(self) -> None:
        if self.write_weight < 0 or self.read_weight < 0:
            raise ValueError("barrier weights cannot be negative")
        if self.write_weight + self.read_weight > 1.0 + 1e-9:
            raise ValueError("barrier weights cannot sum above 1")

    @property
    def fixed_weight(self) -> float:
        return max(0.0, 1.0 - self.write_weight - self.read_weight)


#: Barrier sets per collector design.
CARD_TABLE = BarrierSet(name="card-table", write_weight=0.6, read_weight=0.0)
SATB_RSET = BarrierSet(name="satb+rset", write_weight=0.7, read_weight=0.0)
LOAD_REFERENCE = BarrierSet(name="load-reference", write_weight=0.2, read_weight=0.6)
COLORED_POINTER = BarrierSet(name="colored-pointer", write_weight=0.05, read_weight=0.7)


@dataclass(frozen=True)
class WorkloadOperationRates:
    """A workload's reference-operation rates, events per microsecond."""

    putfield_per_us: float
    aastore_per_us: float
    getfield_per_us: float
    aaload_per_us: float

    def __post_init__(self) -> None:
        for field_name in ("putfield_per_us", "aastore_per_us", "getfield_per_us", "aaload_per_us"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")

    @property
    def write_rate(self) -> float:
        return self.putfield_per_us + self.aastore_per_us

    @property
    def read_rate(self) -> float:
        return self.getfield_per_us + self.aaload_per_us


def _dampened_ratio(rate: float, median: float) -> float:
    """Rate relative to the suite median, dampened and clipped.

    A square-root dampening reflects that barrier work overlaps with the
    instrumented operation itself on an out-of-order core: doubling the
    operation rate does not double the barrier bill.
    """
    if median <= 0:
        raise ValueError("median rate must be positive")
    ratio = (max(rate, 0.0) / median) ** 0.5
    return min(max(ratio, MIN_BARRIER_SCALE), MAX_BARRIER_SCALE)


def mutator_tax(
    baseline_tax: float,
    barriers: BarrierSet,
    rates: Optional[WorkloadOperationRates],
) -> float:
    """The mutator CPU multiplier a collector charges a workload.

    ``baseline_tax`` is the collector's calibrated suite-median tax (e.g.
    1.09 for Shenandoah).  The barrier *overhead* portion
    (``baseline_tax - 1``) is rescaled by the workload's operation mix;
    the operation-independent share is untouched.  With ``rates=None``
    (no bytecode statistics) the baseline is returned unchanged.
    """
    if baseline_tax < 1.0:
        raise ValueError("a tax below 1.0 would mean barriers speed code up")
    if rates is None:
        return baseline_tax
    overhead = baseline_tax - 1.0
    scale = (
        barriers.fixed_weight
        + barriers.write_weight * _dampened_ratio(rates.write_rate, MEDIAN_WRITE_RATE_PER_US)
        + barriers.read_weight * _dampened_ratio(rates.read_rate, MEDIAN_READ_RATE_PER_US)
    )
    return 1.0 + overhead * scale
