"""The execution timeline: pauses, stalls, concurrent spans, and the
mutator clock.

A simulated iteration produces a :class:`Timeline` — the complete schedule
of stop-the-world pauses, allocation stalls, and concurrent-GC spans laid
over wall-clock time.  The :class:`MutatorClock` converts between wall time
and *mutator progress* (useful work done by one application thread), which
is what the request-replay engine needs: a request that takes ``s`` seconds
of service must be stretched across every pause, stall, and
contention-dilated span it overlaps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Pause:
    """A stop-the-world pause: no mutator progress, collector owns the CPU."""

    start: float
    duration: float
    kind: str = "stw"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("pause duration cannot be negative")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Stall:
    """An allocation stall: mutators blocked waiting for the collector.

    Functionally like a pause from the mutator's perspective, but it is
    *not* a reported GC pause — this is how concurrent collectors hide
    their latency from naive pause-time metrics (Section 4.4's critique).
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("stall duration cannot be negative")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ConcurrentSpan:
    """A span of concurrent collector work occupying ``gc_threads`` threads.

    ``dilation`` is the mutator slowdown during the span as computed by the
    machine model (1.0 when spare cores absorb the collector).
    """

    start: float
    end: float
    gc_threads: float
    dilation: float = 1.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("span must end after it starts")
        if self.dilation < 1.0:
            raise ValueError("dilation is a slowdown factor, must be >= 1")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def cpu_seconds(self) -> float:
        return self.duration * self.gc_threads


@dataclass
class Timeline:
    """The full schedule of one simulated benchmark iteration."""

    pauses: List[Pause] = field(default_factory=list)
    stalls: List[Stall] = field(default_factory=list)
    spans: List[ConcurrentSpan] = field(default_factory=list)
    end_time: float = 0.0

    def blocked_intervals(self) -> List[tuple]:
        """Merged, sorted (start, end) intervals where mutators cannot run."""
        raw = [(p.start, p.end) for p in self.pauses]
        raw += [(s.start, s.end) for s in self.stalls]
        raw.sort()
        merged: List[tuple] = []
        for start, end in raw:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def total_pause_time(self) -> float:
        return sum(p.duration for p in self.pauses)

    def total_stall_time(self) -> float:
        return sum(s.duration for s in self.stalls)

    def max_pause(self) -> float:
        return max((p.duration for p in self.pauses), default=0.0)


class MutatorClock:
    """Piecewise-linear map between wall time and mutator progress.

    Progress accrues at rate 0 inside blocked intervals, at ``1/dilation``
    inside concurrent spans, and at rate 1 elsewhere.  Both directions
    (``progress_at`` and ``wall_at``) are O(log n) lookups over precomputed
    breakpoints.
    """

    def __init__(self, timeline: Timeline, horizon: Optional[float] = None):
        self._breaks, self._rates = self._build(timeline, horizon)
        # Cumulative progress at each breakpoint.
        self._progress = [0.0]
        for i in range(1, len(self._breaks)):
            dt = self._breaks[i] - self._breaks[i - 1]
            self._progress.append(self._progress[-1] + dt * self._rates[i - 1])

    @staticmethod
    def _build(timeline: Timeline, horizon: Optional[float]):
        horizon = horizon if horizon is not None else max(
            timeline.end_time,
            max((p.end for p in timeline.pauses), default=0.0),
            max((s.end for s in timeline.stalls), default=0.0),
            max((c.end for c in timeline.spans), default=0.0),
        )
        events = {0.0, horizon}
        for p in timeline.pauses:
            events.update((p.start, min(p.end, horizon)))
        for s in timeline.stalls:
            events.update((s.start, min(s.end, horizon)))
        for c in timeline.spans:
            events.update((c.start, min(c.end, horizon)))
        breaks = sorted(t for t in events if 0.0 <= t <= horizon)
        blocked = timeline.blocked_intervals()
        blocked_starts = [b[0] for b in blocked]
        spans = sorted(timeline.spans, key=lambda s: s.start)
        span_starts = [s.start for s in spans]
        rates = []
        for i in range(len(breaks) - 1):
            mid = (breaks[i] + breaks[i + 1]) / 2.0
            rate = 1.0
            j = bisect.bisect_right(blocked_starts, mid) - 1
            if j >= 0 and blocked[j][1] > mid:
                rate = 0.0
            else:
                k = bisect.bisect_right(span_starts, mid) - 1
                if k >= 0 and spans[k].end > mid:
                    rate = 1.0 / spans[k].dilation
            rates.append(rate)
        return breaks, rates

    @property
    def horizon(self) -> float:
        return self._breaks[-1]

    @property
    def total_progress(self) -> float:
        return self._progress[-1]

    def progress_at(self, t: float) -> float:
        """Mutator progress accumulated by wall time ``t``."""
        if t <= self._breaks[0]:
            return 0.0
        if t >= self._breaks[-1]:
            # Beyond the horizon the machine is idle: progress at rate 1.
            return self._progress[-1] + (t - self._breaks[-1])
        i = bisect.bisect_right(self._breaks, t) - 1
        return self._progress[i] + (t - self._breaks[i]) * self._rates[i]

    def wall_at(self, progress: float) -> float:
        """Wall time at which cumulative mutator progress reaches ``progress``."""
        if progress <= 0.0:
            return self._breaks[0]
        if progress >= self._progress[-1]:
            return self._breaks[-1] + (progress - self._progress[-1])
        i = bisect.bisect_right(self._progress, progress) - 1
        # Skip zero-rate segments (cannot accrue progress inside them).
        while self._rates[i] == 0.0:
            i += 1
        remaining = progress - self._progress[i]
        return self._breaks[i] + remaining / self._rates[i]

    def advance(self, start_wall: float, work: float) -> float:
        """Wall time when ``work`` seconds of mutator progress, started at
        wall time ``start_wall``, completes.

        Clamped to ``start_wall``: ``wall_at`` returns the *earliest* time
        achieving a progress level, which can precede ``start_wall`` when
        the start sits inside a blocked interval and ``work`` is zero.
        """
        if work < 0:
            raise ValueError("work cannot be negative")
        return max(start_wall, self.wall_at(self.progress_at(start_wall) + work))


def minimum_mutator_utilization(
    pauses: Sequence[Pause], window: float, horizon: float
) -> float:
    """Minimum mutator utilization (MMU) for a sliding ``window``.

    Cheng and Blelloch's metric (paper Figure 2): the minimum, over all
    window placements, of the fraction of the window in which the mutator
    could run.  Several short pauses clustered together can be worse than
    one long pause — which is precisely why GC pause time is a poor proxy
    for user-experienced latency.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if window >= horizon:
        total = sum(min(p.end, horizon) - max(p.start, 0.0) for p in pauses if p.end > 0 and p.start < horizon)
        return max(0.0, 1.0 - total / horizon)
    if not pauses:
        return 1.0
    # Candidate window placements: aligned to pause starts and ends.
    candidates = {0.0, horizon - window}
    for p in pauses:
        candidates.add(max(0.0, min(p.start, horizon - window)))
        candidates.add(max(0.0, min(p.end - window, horizon - window)))
    ordered = sorted(pauses, key=lambda p: p.start)
    worst = 1.0
    for t0 in candidates:
        t1 = t0 + window
        paused = 0.0
        for p in ordered:
            if p.end <= t0:
                continue
            if p.start >= t1:
                break
            paused += min(p.end, t1) - max(p.start, t0)
        worst = min(worst, 1.0 - paused / window)
    return max(worst, 0.0)
