"""The simulated JVM: mutator, heap, and collector on a shared timeline.

One :func:`simulate_iteration` call plays a single benchmark iteration: the
mutator makes progress and allocates, the collector interjects cycles, and
the telemetry records everything.  :func:`simulate_run` strings iterations
together the way the harness runs DaCapo (``-n 5``, timing the last), with
JIT warmup modelled as a decaying slowdown and heap leakage carried across
iterations.

Accounting follows the paper's Recommendation O2 exactly: every run yields
both a wall-clock time and a task clock (total CPU over all threads, the
simulator's TASK_CLOCK analogue).

Simulation runs at one of two **fidelity tiers**
(:mod:`repro.jvm.telemetry`): ``"full"`` carries per-event telemetry and a
:class:`~repro.jvm.timeline.Timeline` on each result; ``"aggregate"``
keeps only the headline scalars and skips event materialization entirely
— much faster, and bit-identical on every scalar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.rng import generator_for
from repro.jvm.collectors.base import Collector, CyclePlan, GcTuning
from repro.jvm.cpu import DEFAULT_MACHINE, Machine
from repro.jvm.environment import BASELINE_ENVIRONMENT, EnvironmentProfile
from repro.jvm.heap import Heap, OutOfMemoryError
from repro.jvm.telemetry import (
    FIDELITY_FULL,
    FidelityError,
    Telemetry,
    make_telemetry,
)
from repro.jvm.timeline import Timeline
from repro.observability import RecorderLike
from repro.observability import events as flight

#: Hard cap on GC cycles per iteration: a run that needs more than this is
#: thrashing and is treated as unable to complete in the given heap.
MAX_CYCLES_PER_ITERATION = 200_000


@dataclass(frozen=True)
class IterationResult:
    """Everything measured about one benchmark iteration.

    All headline scalars are first-class fields whatever the fidelity
    tier.  ``timeline`` and ``telemetry`` are full-fidelity detail:
    ``None`` on aggregate-tier results, where only the scalars exist.
    Consumers that need the detail go through :meth:`require_timeline` /
    :meth:`require_telemetry` so an aggregate result fails with a clear
    upgrade message instead of an ``AttributeError``.
    """

    wall_s: float
    mutator_cpu_s: float
    gc_pause_cpu_s: float
    gc_concurrent_cpu_s: float
    stw_wall_s: float
    stall_wall_s: float
    gc_count: int
    allocated_mb: float
    #: Long-lived live set at iteration end (heap introspection; the basis
    #: of the leakage statistic GLK).
    live_end_mb: float
    #: Time-averaged heap occupancy (the paper's area-under-the-curve
    #: net-footprint measure, Section 4.2) — a headline scalar, so it is
    #: carried at every fidelity tier.
    avg_footprint_mb: float = 0.0
    #: Which tier this iteration was simulated at.
    fidelity: str = FIDELITY_FULL
    timeline: Optional[Timeline] = None
    telemetry: Optional[Telemetry] = None

    def require_timeline(self) -> Timeline:
        """The iteration's :class:`Timeline`, or a :class:`FidelityError`
        explaining that the run must be re-simulated at full fidelity."""
        if self.timeline is None:
            raise FidelityError(
                "this result was simulated at fidelity='aggregate' and carries "
                "no timeline; re-run with fidelity='full' to record per-event "
                "detail"
            )
        return self.timeline

    def require_telemetry(self) -> Telemetry:
        """The iteration's full :class:`Telemetry`, or a
        :class:`FidelityError` explaining the needed upgrade."""
        if self.telemetry is None:
            raise FidelityError(
                "this result was simulated at fidelity='aggregate' and carries "
                "no per-event telemetry; re-run with fidelity='full' to record "
                "pauses, spans, and the GC log"
            )
        return self.telemetry

    @property
    def gc_cpu_s(self) -> float:
        return self.gc_pause_cpu_s + self.gc_concurrent_cpu_s

    @property
    def task_clock_s(self) -> float:
        """Total CPU over all threads — the Linux perf TASK_CLOCK analogue."""
        return self.mutator_cpu_s + self.gc_cpu_s

    @property
    def distilled_wall_s(self) -> float:
        """Wall time minus easily-attributable STW time (LBO numeratorless
        view: the conservative approximation to app-only cost)."""
        return self.wall_s - self.stw_wall_s

    @property
    def distilled_task_s(self) -> float:
        """Task clock minus attributable GC CPU (pauses + GC threads)."""
        return self.task_clock_s - self.gc_pause_cpu_s - self.gc_concurrent_cpu_s


@dataclass(frozen=True)
class RunResult:
    """A full invocation: several iterations in one simulated JVM."""

    iterations: List[IterationResult]
    #: Reachable footprint observed after each forced inter-iteration full
    #: GC (populated only when ``force_full_gc_between_iterations`` is on).
    forced_gc_footprints_mb: List[float] = field(default_factory=list)

    @property
    def timed(self) -> IterationResult:
        """The measured iteration — the last, per the paper's methodology."""
        return self.iterations[-1]


@dataclass
class _MutatorState:
    """Progress bookkeeping for the iteration in flight."""

    target_progress_s: float
    alloc_rate_mb_s: float  # allocation per second of mutator progress
    progress_s: float = 0.0
    wall_s: float = 0.0

    @property
    def remaining_s(self) -> float:
        remaining = self.target_progress_s - self.progress_s
        return remaining if remaining > 0.0 else 0.0

    @property
    def done(self) -> bool:
        return self.progress_s >= self.target_progress_s - 1e-12


def warmup_factor(iteration: int, spec) -> float:
    """Per-iteration slowdown from cold JIT/classloading.

    Iteration 1 runs ``spec.warmup_excess`` slower; the excess decays so the
    workload is within 1.5 % of peak by iteration ``spec.warmup_iterations``
    (the PWU nominal statistic) — matching the paper's observation that
    ``-n 5`` suffices for default-sized workloads.
    """
    if iteration < 1:
        raise ValueError("iterations are numbered from 1")
    excess = spec.warmup_excess
    if excess <= 0.015:
        return 1.0
    pwu = max(spec.warmup_iterations, 1)
    if pwu == 1:
        return 1.0 if iteration > 1 else 1.0 + excess
    decay = math.log(excess / 0.015) / (pwu - 1)
    return 1.0 + excess * math.exp(-decay * (iteration - 1))


class _IterationSim:
    """Runs one iteration; split out of the function for readability."""

    def __init__(
        self,
        spec,
        collector: Collector,
        heap: Heap,
        machine: Machine,
        rng: np.random.Generator,
        speed_factor: float,
        duration_scale: float,
        fidelity: Optional[str] = None,
    ):
        self.spec = spec
        self.collector = collector
        self.heap = heap
        self.machine = machine
        self.rng = rng
        self.telemetry = make_telemetry(fidelity)
        intrinsic = spec.execution_time_s * duration_scale * speed_factor
        # Run-to-run noise: the PSD nominal statistic is the relative
        # standard deviation among invocations at peak performance.
        noise = float(np.exp(rng.normal(0.0, spec.run_noise)))
        target = intrinsic * collector.mutator_tax * noise
        # Allocation volume is a property of the workload, not the
        # collector: accrue it against untaxed progress.
        alloc_rate = spec.alloc_rate_mb_s / collector.mutator_tax
        self.state = _MutatorState(target_progress_s=target, alloc_rate_mb_s=alloc_rate)
        # The heap persists across iterations; report per-iteration allocation.
        self._alloc_at_start_mb = heap.allocated_total_mb

    # -- helpers -------------------------------------------------------
    def _run_mutator(self, progress_s: float) -> None:
        """Advance the mutator outside any GC cycle (rate 1, no dilation).

        Allocation bypasses :meth:`Heap.allocate`'s free-space check: the
        caller derived ``progress_s`` from the free space itself (budget =
        free - trigger, trigger >= 0), so the allocation fits by
        construction.
        """
        state = self.state
        heap = self.heap
        mb = progress_s * state.alloc_rate_mb_s
        heap.young_mb += mb
        heap.allocated_total_mb += mb
        state.progress_s += progress_s
        state.wall_s += progress_s

    def _execute_pauses(self, segments, cycle_kind: str) -> None:
        telem = self.telemetry
        if telem.wants_events:
            for seg in segments:
                telem.record_pause(
                    start=self.state.wall_s,
                    duration=seg.duration_s,
                    kind=f"{cycle_kind}:{seg.kind}",
                    workers=seg.workers,
                )
                self.state.wall_s += seg.duration_s
        else:
            # Aggregate tier: same per-segment accumulation order as
            # record_pause (the scalar contract is bit-identical floats),
            # without the call or the event object.
            state = self.state
            for seg in segments:
                duration = seg.duration_s
                telem.pause_cpu_s += duration * seg.workers
                telem.stw_wall_s += duration
                state.wall_s += duration

    def _execute_concurrent(self, plan: CyclePlan) -> None:
        """Run the concurrent phase: GC works for ``duration`` wall seconds
        while the mutator runs diluted, paced, or stalled beside it."""
        workers = plan.concurrent_threads
        rate = self.collector.tuning.concurrent_rate_mb_s * self.machine.parallel_speedup(
            max(int(workers), 1), self.collector.tuning.efficiency_exponent
        )
        duration = plan.concurrent_work_mb / rate
        if duration <= 0:
            return
        contention = self.machine.mutator_dilation(self.spec.cpu_cores, workers)
        progress_rate = 1.0 / contention
        if plan.pace_alloc_to_mb_s is not None and self.state.alloc_rate_mb_s > 0:
            paced = plan.pace_alloc_to_mb_s / self.state.alloc_rate_mb_s
            progress_rate = min(progress_rate, paced)
        start = self.state.wall_s

        max_by_space = (
            self.heap.free_mb / self.state.alloc_rate_mb_s
            if self.state.alloc_rate_mb_s > 0
            else math.inf
        )
        max_by_work = self.state.remaining_s
        achievable = progress_rate * duration
        progress = min(achievable, max_by_space, max_by_work)
        run_wall = progress / progress_rate if progress_rate > 0 else 0.0

        finished_workload = progress >= max_by_work - 1e-12
        span_end = start + (run_wall if finished_workload else duration)
        dilation = 1.0 / progress_rate if progress_rate > 0 else 1.0
        telem = self.telemetry
        if telem.wants_events:
            telem.record_concurrent(
                start=start, end=span_end, gc_threads=workers, dilation=max(1.0, dilation)
            )
        else:
            # Same float expression as ConcurrentSpan.cpu_seconds, inlined.
            telem.concurrent_cpu_s += (span_end - start) * workers
        self.heap.allocate(progress * self.state.alloc_rate_mb_s)
        self.state.progress_s += progress
        if finished_workload:
            self.state.wall_s = start + run_wall
            return
        if run_wall < duration:
            # Heap exhausted mid-cycle: allocation stall until the cycle ends.
            self.telemetry.record_stall(start + run_wall, duration - run_wall)
        self.state.wall_s = start + duration

    def _apply_heap_effect(self, plan: CyclePlan, young_at_start: float) -> float:
        heap = self.heap
        before = heap.live_mb + heap.young_mb  # occupied_mb, inlined
        if plan.full_live_target_mb is not None:
            # Allocation performed during a concurrent cycle survives it as
            # floating garbage; STW full collections have none.
            floating = heap.young_mb - young_at_start
            if floating < 0.0:
                floating = 0.0
            heap.live_mb = min(plan.full_live_target_mb, before)
            heap.young_mb = floating
            heap.live_mb = min(heap.live_mb, heap.usable_mb - floating)
        else:
            # Inline of Heap.collect_young minus revalidating the plan's
            # survival/promotion constants (CyclePlan carries the same
            # values every cycle); the accounting floats are identical.
            survivors = heap.young_mb * plan.survival_rate
            promoted = survivors * plan.promotion_fraction
            heap.young_mb = survivors - promoted
            heap.live_mb += promoted
            if plan.old_reclaim_mb > 0.0:
                floor = self.collector.live_footprint_mb()
                reduced = heap.live_mb - plan.old_reclaim_mb
                heap.live_mb = floor if floor > reduced else reduced
        return before - (heap.live_mb + heap.young_mb)

    def _execute_cycle(self, plan: CyclePlan) -> float:
        heap = self.heap
        heap_before = heap.live_mb + heap.young_mb  # occupied_mb, inlined
        started = self.state.wall_s
        young_at_start = heap.young_mb
        self._execute_pauses(plan.pre_pauses, plan.kind)
        if plan.concurrent_work_mb > 0:
            self._execute_concurrent(plan)
        if plan.post_pauses:
            self._execute_pauses(plan.post_pauses, plan.kind)
        reclaimed = self._apply_heap_effect(plan, young_at_start)
        telem = self.telemetry
        if telem.wants_events:
            telem.record_collection(
                time=started,
                kind=plan.kind,
                pause_s=sum(p.duration_s for p in plan.pre_pauses + plan.post_pauses),
                reclaimed_mb=reclaimed,
                heap_before_mb=heap_before,
                heap_after_mb=heap.live_mb + heap.young_mb,
            )
        else:
            # Inline of AggregateTelemetry.record_collection (same floats,
            # same order), saving a call per GC cycle; kind/pause_s only
            # exist on GC-log entries, which this tier never materializes.
            telem.gc_count += 1
            dt = started - telem._footprint_prev_time
            if dt < 0.0:
                dt = 0.0
            telem._footprint_area += dt * (telem._footprint_prev_occ + heap_before) / 2.0
            telem._footprint_prev_time = started
            telem._footprint_prev_occ = heap.live_mb + heap.young_mb
        self.collector.notify_cycle_complete(self.heap, plan)
        return reclaimed

    # -- main loop -----------------------------------------------------
    def run(self) -> IterationResult:
        state = self.state
        heap = self.heap
        collector = self.collector
        # Constant for the iteration (set once in __init__), and the
        # ``state.done`` threshold, hoisted out of the hot loop.
        alloc_rate = state.alloc_rate_mb_s
        done_at = state.target_progress_s - 1e-12
        unproductive = 0
        cycles = 0
        while state.progress_s < done_at:
            trigger_free = collector.trigger_free_mb(heap)
            budget_mb = heap.free_mb - trigger_free
            if budget_mb > 0 and alloc_rate > 0:
                progress_to_trigger = budget_mb / alloc_rate
                remaining = state.remaining_s
                self._run_mutator(
                    progress_to_trigger if progress_to_trigger < remaining else remaining
                )
                if state.progress_s >= done_at:
                    break
            elif alloc_rate <= 0:
                # Non-allocating remainder: run to completion, no GC needed.
                self._run_mutator(state.remaining_s)
                break
            cycles += 1
            if cycles > MAX_CYCLES_PER_ITERATION:
                raise OutOfMemoryError(
                    f"{self.spec.name}: thrashing — more than "
                    f"{MAX_CYCLES_PER_ITERATION} GC cycles in one iteration"
                )
            reclaimed = self._execute_cycle(collector.plan_cycle(heap))
            if reclaimed < 0.25 and heap.free_mb < 0.5:
                unproductive += 1
                if unproductive >= 3:
                    raise OutOfMemoryError(
                        f"{self.spec.name}: heap of {heap.capacity_mb:.0f} MB "
                        f"cannot make progress with {collector.NAME}"
                    )
            else:
                unproductive = 0
        self.telemetry.record_background_cpu(
            collector.background_concurrent_cpu_s(heap.allocated_total_mb, state.wall_s)
        )
        return self._result()

    def _result(self) -> IterationResult:
        state = self.state
        telem = self.telemetry
        mutator_cpu = state.progress_s * self.spec.cpu_cores
        full = telem.wants_events
        return IterationResult(
            wall_s=state.wall_s,
            mutator_cpu_s=mutator_cpu,
            gc_pause_cpu_s=telem.pause_cpu_s,
            gc_concurrent_cpu_s=telem.concurrent_cpu_s,
            stw_wall_s=telem.stw_wall_s,
            stall_wall_s=telem.stall_wall_s,
            gc_count=telem.gc_count,
            allocated_mb=self.heap.allocated_total_mb - self._alloc_at_start_mb,
            live_end_mb=self.heap.live_mb,
            avg_footprint_mb=(
                telem.average_footprint_mb(state.wall_s) if state.wall_s > 0 else 0.0
            ),
            fidelity=telem.fidelity,
            timeline=telem.to_timeline(end_time=state.wall_s) if full else None,
            telemetry=telem if full else None,
        )


def record_iteration(
    recorder: RecorderLike,
    spec,
    collector_name: str,
    iteration: int,
    start_ts: float,
    result: IterationResult,
    track: int = 0,
) -> None:
    """Emit one iteration's flight-recorder events at offset ``start_ts``.

    Purely observational: events are derived from the iteration's
    telemetry after the fact, in simulated time, so recording can never
    perturb the simulation (and the no-op :class:`NullRecorder` makes it
    free when disabled).  The iteration span comes first, then its nested
    GC pauses, concurrent spans, and allocation stalls, then the
    estimated JIT warmup overhead (the share of the iteration's wall time
    attributable to the warmup slowdown factor).

    Requires a full-fidelity ``result`` (the events *are* the per-event
    telemetry); an aggregate-tier result raises
    :class:`~repro.jvm.telemetry.FidelityError` unless the recorder is
    disabled, in which case there is nothing to emit anyway.
    """
    if not recorder.enabled:
        return
    telem = result.require_telemetry()
    recorder.emit(
        flight.IterationSpan(
            ts=start_ts,
            track=track,
            dur=result.wall_s,
            index=iteration,
            benchmark=spec.name,
            collector=collector_name,
        )
    )
    for pause in telem.pauses:
        recorder.emit(
            flight.GcPause(
                ts=start_ts + pause.start, track=track, dur=pause.duration, kind=pause.kind
            )
        )
    for span in telem.spans:
        recorder.emit(
            flight.ConcurrentSpan(
                ts=start_ts + span.start,
                track=track,
                dur=span.duration,
                gc_threads=span.gc_threads,
                dilation=span.dilation,
            )
        )
    for stall in telem.stalls:
        recorder.emit(
            flight.AllocationStall(
                ts=start_ts + stall.start, track=track, dur=stall.duration
            )
        )
    factor = warmup_factor(iteration, spec)
    if factor > 1.0:
        recorder.emit(
            flight.CompileWarmup(
                ts=start_ts,
                track=track,
                dur=result.wall_s * (1.0 - 1.0 / factor),
                iteration=iteration,
                factor=factor,
            )
        )


def collector_label(collector) -> str:
    """Display/seed label for a collector given by name or by class."""
    return collector if isinstance(collector, str) else collector.NAME


def make_collector(
    collector,
    spec,
    machine: Machine = DEFAULT_MACHINE,
    tuning: Optional[GcTuning] = None,
    rng: Optional[np.random.Generator] = None,
):
    """Instantiate a collector for a workload.

    ``collector`` is either a registered name or a ``Collector`` subclass
    (the latter lets experiments run ablated variants without touching the
    registry).
    """
    from repro.jvm.collectors import COLLECTORS, resolve_collector

    if isinstance(collector, str):
        cls = COLLECTORS[resolve_collector(collector)]
    elif isinstance(collector, type) and issubclass(collector, Collector):
        cls = collector
    else:
        raise TypeError(f"collector must be a name or Collector subclass, got {collector!r}")
    return cls(
        spec, machine, tuning or GcTuning(), rng or generator_for(cls.NAME, spec.name)
    )


def simulate_iteration(
    spec,
    collector: Collector,
    heap: Heap,
    machine: Machine = DEFAULT_MACHINE,
    rng: Optional[np.random.Generator] = None,
    speed_factor: float = 1.0,
    duration_scale: float = 1.0,
    fidelity: Optional[str] = None,
) -> IterationResult:
    """Simulate one benchmark iteration in an existing heap.

    ``fidelity`` selects the telemetry tier: ``"full"`` (default) records
    per-event detail; ``"aggregate"`` keeps only headline scalars —
    bit-identical on every scalar, substantially faster.
    """
    rng = rng if rng is not None else generator_for(spec.name, collector.NAME)
    sim = _IterationSim(
        spec, collector, heap, machine, rng, speed_factor, duration_scale, fidelity
    )
    return sim.run()


def simulate_run(
    spec,
    collector_name: str,
    heap_mb: float,
    iterations: Optional[int] = None,
    invocation: int = 0,
    machine: Machine = DEFAULT_MACHINE,
    tuning: Optional[GcTuning] = None,
    duration_scale: float = 1.0,
    environment: EnvironmentProfile = BASELINE_ENVIRONMENT,
    force_full_gc_between_iterations: bool = False,
    recorder: Optional[RecorderLike] = None,
    fidelity: Optional[str] = None,
) -> RunResult:
    """Simulate one JVM invocation: ``iterations`` back-to-back iterations.

    ``force_full_gc_between_iterations`` is the harness analogue of calling
    ``System.gc()`` at iteration boundaries — used by leakage measurement
    to observe the reachable footprint without floating garbage.

    ``heap_mb`` is the ``-Xms``/``-Xmx`` setting.  ``environment`` selects
    the execution-environment configuration (memory speed, LLC, frequency,
    compiler — Section 6.1.3); the default is the paper's baseline.
    Raises :class:`OutOfMemoryError` if the workload cannot run in that
    heap with that collector — the signal the minimum-heap search relies
    on.

    ``recorder`` is an optional flight recorder
    (:class:`repro.observability.Recorder`); when given, each iteration
    emits span events (iteration, GC pauses, concurrent work, stalls,
    warmup) in simulated time.  Recording is observational only — results
    are bit-identical with or without it.

    ``fidelity`` selects the telemetry tier for every iteration:
    ``"full"`` (the default when ``None``) attaches a timeline and
    per-event telemetry to each :class:`IterationResult`;
    ``"aggregate"`` carries headline scalars only — bit-identical on
    every scalar, substantially faster.  An enabled flight recorder
    needs the events, so it auto-upgrades ``"aggregate"`` to ``"full"``.
    """
    if iterations is None:
        iterations = spec.default_iterations
    if iterations < 1:
        raise ValueError("need at least one iteration")
    rng = generator_for(spec.name, collector_label(collector_name), f"{heap_mb:.3f}", invocation)
    collector = make_collector(collector_name, spec, machine, tuning, rng)
    environment_factor = environment.execution_time_factor(spec.sensitivities)

    heap = Heap(capacity_mb=heap_mb, reserve_fraction=collector.RESERVE_FRACTION)
    live = collector.live_footprint_mb()
    heap.require_fits(live + max(0.5, 0.04 * live))
    heap.live_mb = live

    recorder = recorder if recorder is not None else flight.NullRecorder()
    if recorder.enabled:
        # The flight recorder replays per-event telemetry; aggregate runs
        # have none, so recording forces the full tier.
        fidelity = FIDELITY_FULL
    results = []
    footprints = []
    run_clock = 0.0
    for i in range(1, iterations + 1):
        result = simulate_iteration(
            spec,
            collector,
            heap,
            machine,
            rng,
            speed_factor=warmup_factor(i, spec) * environment_factor,
            duration_scale=duration_scale,
            fidelity=fidelity,
        )
        results.append(result)
        record_iteration(
            recorder, spec, collector_label(collector_name), i, run_clock, result
        )
        run_clock += result.wall_s
        # Memory leakage across iterations (the GLK nominal statistic is
        # percent growth over ten iterations).  Leaked memory is reachable:
        # it joins the collector's live footprint and no collection can
        # reclaim it.
        if spec.leak_rate > 0:
            leak = live * spec.leak_rate
            collector.extra_live_mb += leak
            heap.live_mb = min(heap.live_mb + leak, heap.usable_mb)
        if force_full_gc_between_iterations:
            heap.collect_full(min(collector.live_footprint_mb(), heap.usable_mb))
            footprints.append(heap.occupied_mb)
    return RunResult(iterations=results, forced_gc_footprints_mb=footprints)
