"""Machine model: cores, SMT, and the wall-clock/task-clock distinction.

The paper's Recommendation O2 insists on reporting both wall clock and total
CPU (Linux perf TASK_CLOCK).  The machine model is what makes that
distinction meaningful in the simulator: wall time is elapsed time on the
timeline, task clock is the integral of busy hardware threads over time.

The default machine mirrors the paper's evaluation platform: an AMD Ryzen 9
7950X (Zen 4) with 16 cores / 32 hardware threads at 4.5 GHz and 64 MB of
last-level cache.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Machine:
    """A host machine the simulated JVM runs on."""

    cores: int = 16
    smt: int = 2
    base_clock_ghz: float = 4.5
    llc_mb: float = 64.0
    name: str = "AMD Ryzen 9 7950X (Zen4)"
    #: Mutator slowdown per fully-occupied machine of concurrent GC work,
    #: even when cores are spare: cache pollution, memory bandwidth, and
    #: SMT contention.  This is why "free" concurrent collection is never
    #: actually free — the mechanism behind the paper's observation that
    #: latency-oriented collectors do not deliver better user-experienced
    #: latency than G1 even at generous heaps (Section 6.3).
    concurrent_interference: float = 0.35

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("machine needs at least one core")
        if self.smt < 1:
            raise ValueError("SMT factor must be >= 1")

    @property
    def hardware_threads(self) -> int:
        """Number of schedulable hardware threads (cores x SMT)."""
        return self.cores * self.smt

    def mutator_dilation(self, mutator_threads: float, gc_threads: float) -> float:
        """Slowdown factor applied to mutator progress while ``gc_threads``
        concurrent GC threads are running.

        If enough hardware threads are idle, concurrent GC is free from the
        mutator's perspective (this is the cassandra effect: wall time is
        untouched while task clock balloons).  Once the machine saturates,
        mutator and collector compete and the mutator runs at
        ``available / demanded`` speed.
        """
        if mutator_threads <= 0:
            return 1.0
        interference = 1.0 + self.concurrent_interference * gc_threads / self.hardware_threads
        available = self.hardware_threads - gc_threads
        if available <= 0:
            # Collector monopolises the machine; leave the mutator a sliver
            # of throughput rather than dividing by zero.
            return max(mutator_threads / 0.25, interference)
        if mutator_threads <= available:
            return interference
        return max(mutator_threads / available, interference)

    def parallel_speedup(self, threads: int, efficiency_exponent: float = 0.85) -> float:
        """Achievable speedup for ``threads`` workers with sub-linear scaling.

        Parallel collectors never scale perfectly (the paper notes Parallel
        has a larger task clock than Serial for exactly this reason); a
        power-law ``threads ** e`` with ``e < 1`` captures the efficiency
        loss without modelling the memory system explicitly.
        """
        usable = max(1, min(threads, self.hardware_threads))
        return float(usable) ** efficiency_exponent


DEFAULT_MACHINE = Machine()
