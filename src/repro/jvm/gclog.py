"""GC logs in OpenJDK unified-logging format.

The paper's analyses lean on GC logs ("We also confirm this by reviewing
Shenandoah's GC log", Section 6.3).  This module renders a simulated run's
telemetry as ``-Xlog:gc``-style log lines and parses them back, so
downstream tooling built for real JVM logs — and humans used to reading
them — can work against simulated runs, and real logs can be compared
side by side.

Example output::

    [0.523s][info][gc] GC(12) Pause Young (Normal) 188M->45M(348M) 2.531ms
    [1.201s][info][gc] GC(13) Concurrent Mark Cycle 211M->140M(348M) 48.220ms
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.jvm.telemetry import GcEvent, Telemetry

#: Map from the simulator's cycle kinds to the phrasing OpenJDK uses.
_KIND_LABELS = {
    "young": "Pause Young (Normal)",
    "mixed": "Pause Young (Mixed)",
    "full": "Pause Full",
    "concurrent": "Concurrent Cycle",
    "concurrent-mark": "Concurrent Mark Cycle",
    "concurrent-young": "Concurrent Young Cycle",
}

_LINE_RE = re.compile(
    r"^\[(?P<time>\d+\.\d{3})s\]\[info\]\[gc\] "
    r"GC\((?P<number>\d+)\) (?P<label>.+?) "
    r"(?P<before>\d+)M->(?P<after>\d+)M\((?P<capacity>\d+)M\) "
    r"(?P<duration>\d+\.\d{3})ms$"
)


def _label_for(kind: str) -> str:
    return _KIND_LABELS.get(kind, f"Pause ({kind})")


def format_gc_log(telemetry: Telemetry, heap_capacity_mb: float) -> List[str]:
    """Render a run's GC events as unified-logging lines.

    Accepts a :class:`~repro.jvm.telemetry.Telemetry` or anything
    carrying one (e.g. an :class:`~repro.jvm.simulator.IterationResult`).
    The log needs per-event detail, so an aggregate-fidelity result
    raises :class:`~repro.jvm.telemetry.FidelityError` with the upgrade
    hint rather than rendering an empty log.
    """
    if heap_capacity_mb <= 0:
        raise ValueError("heap capacity must be positive")
    if hasattr(telemetry, "require_telemetry"):
        telemetry = telemetry.require_telemetry()
    lines = []
    for number, event in enumerate(telemetry.gc_log):
        lines.append(
            f"[{event.time:.3f}s][info][gc] GC({number}) {_label_for(event.kind)} "
            f"{event.heap_before_mb:.0f}M->{event.heap_after_mb:.0f}M"
            f"({heap_capacity_mb:.0f}M) {event.pause_s * 1e3:.3f}ms"
        )
    return lines


#: The renderer's fallback phrasing for kinds outside ``_KIND_LABELS``;
#: parsing inverts it so ``render → parse`` is kind-lossless for *every*
#: kind, known or not.
_FALLBACK_LABEL_RE = re.compile(r"^Pause \((?P<kind>.+)\)$")


def _kind_for(label: str) -> str:
    reverse = {v: k for k, v in _KIND_LABELS.items()}
    kind = reverse.get(label)
    if kind is not None:
        return kind
    fallback = _FALLBACK_LABEL_RE.match(label)
    return fallback.group("kind") if fallback else "parsed"


def parse_gc_log(lines: List[str]) -> List[GcEvent]:
    """Parse unified-logging lines back into GC events.

    Only the fields the log carries are recovered; ``reclaimed_mb`` is
    derived from the before/after occupancy.  Kind recovery inverts the
    renderer exactly — both the ``_KIND_LABELS`` phrasings and the
    ``Pause (<kind>)`` fallback — so ``render → parse`` round-trips every
    kind.  Labels from *real* JVM logs that this emitter never produces
    map to a ``parsed`` kind rather than failing.
    """
    events = []
    for line in lines:
        match = _LINE_RE.match(line.strip())
        if not match:
            raise ValueError(f"unparseable GC log line: {line!r}")
        before = float(match.group("before"))
        after = float(match.group("after"))
        events.append(
            GcEvent(
                time=float(match.group("time")),
                kind=_kind_for(match.group("label")),
                pause_s=float(match.group("duration")) / 1e3,
                reclaimed_mb=max(before - after, 0.0),
                heap_before_mb=before,
                heap_after_mb=after,
            )
        )
    return events


@dataclass(frozen=True)
class GcLogSummary:
    """Aggregate view of a GC log — what a quick log review extracts."""

    collections: int
    total_pause_s: float
    max_pause_s: float
    reclaimed_mb: float

    @classmethod
    def from_events(cls, events: List[GcEvent]) -> "GcLogSummary":
        return cls(
            collections=len(events),
            total_pause_s=sum(e.pause_s for e in events),
            max_pause_s=max((e.pause_s for e in events), default=0.0),
            reclaimed_mb=sum(e.reclaimed_mb for e in events),
        )
