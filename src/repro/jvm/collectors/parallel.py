"""The Parallel collector (2005): stop-the-world with a worker team.

Parallel is Serial with hardware parallelism thrown at the pauses: wall
clock improves dramatically, but — as the paper's Figure 1(b) shows —
imperfect parallel scaling means it consumes *more* total CPU than Serial.
The model expresses that directly: pause wall time divides by a sub-linear
team speedup while pause CPU multiplies by the full team size.
"""

from __future__ import annotations

from repro.jvm.collectors.serial import SerialCollector


class ParallelCollector(SerialCollector):
    """Throughput-oriented parallel scavenge + parallel compact."""

    NAME = "Parallel"
    YEAR = 2005
    MUTATOR_TAX = 1.02
    RESERVE_FRACTION = 0.02

    def stw_workers(self) -> int:
        # ParallelGCThreads defaults to ~5/8 of hardware threads on big
        # machines; a full core count is a good model on 16c/32t.
        return min(self.machine.cores, 16)
