"""The Serial collector (1998): single-threaded, stop-the-world, generational.

Serial is the oldest design in OpenJDK 21 and — the paper's central
observation — still the cheapest in *total CPU* terms: all of its work is
easily attributable STW time, its barriers are a simple card table, and it
wastes nothing on parallel coordination.  Its weakness is wall-clock time
(one worker does everything) and pause length.
"""

from __future__ import annotations

from repro.jvm.collectors.base import Collector, CyclePlan
from repro.jvm.heap import Heap


class SerialCollector(Collector):
    """Generational mark-compact with one GC thread."""

    NAME = "Serial"
    YEAR = 1998
    MUTATOR_TAX = 1.015  # card-table write barrier + bump allocation
    RESERVE_FRACTION = 0.01

    #: Fraction of the old-generation headroom given to eden.
    YOUNG_FRACTION = 0.33
    #: Old occupancy (fraction of usable) that forces a full collection.
    FULL_GC_THRESHOLD = 0.90

    def stw_workers(self) -> int:
        return 1

    def trigger_free_mb(self, heap: Heap) -> float:
        # Inlined eden_capacity_mb with identical float grouping; this
        # runs once per simulator loop step.
        headroom = heap.usable_mb - heap.live_mb
        eden = self.YOUNG_FRACTION * headroom if headroom > 0.0 else 0.0
        if eden < 0.5:
            eden = 0.5
        free = headroom - eden
        return free if free > 0.0 else 0.0

    def plan_cycle(self, heap: Heap) -> CyclePlan:
        if heap.live_mb >= self.FULL_GC_THRESHOLD * heap.usable_mb:
            return self._full_plan(heap)
        return self._young_plan(heap)

    def _young_plan(self, heap: Heap) -> CyclePlan:
        survivors = heap.young_mb * self.spec.survival_rate
        # Copy survivors plus scan the card-marked portion of the old gen.
        work = survivors + 0.02 * heap.live_mb
        pause = self.stw_pause_for(work, self.tuning.copy_rate_mb_s, kind="young")
        return CyclePlan(
            kind="young",
            pre_pauses=(pause,),
            survival_rate=self.spec.survival_rate,
            promotion_fraction=self.spec.promotion_fraction,
        )

    def _full_plan(self, heap: Heap) -> CyclePlan:
        live = self.live_footprint_mb()
        # Mark everything reachable, then slide-compact it.
        mark = self.stw_pause_for(heap.occupied_mb, self.tuning.mark_rate_mb_s, kind="full-mark")
        compact = self.stw_pause_for(live, self.tuning.copy_rate_mb_s, kind="full-compact")
        return CyclePlan(
            kind="full",
            pre_pauses=(mark, compact),
            full_live_target_mb=live,
        )
