"""The five OpenJDK 21 production collector models.

``COLLECTORS`` maps each collector's name to its class, ordered by the year
its design entered the JVM — the ordering the paper uses when it observes
that newer collectors consume more resources than older ones.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.jvm.collectors.base import Collector, CyclePlan, GcTuning, PauseSegment
from repro.jvm.collectors.g1 import G1Collector
from repro.jvm.collectors.genzgc import GenZgcCollector
from repro.jvm.collectors.parallel import ParallelCollector
from repro.jvm.collectors.serial import SerialCollector
from repro.jvm.collectors.shenandoah import ShenandoahCollector
from repro.jvm.collectors.zgc import ZgcCollector

COLLECTORS: Dict[str, Type[Collector]] = {
    cls.NAME: cls
    for cls in (
        SerialCollector,
        ParallelCollector,
        G1Collector,
        ShenandoahCollector,
        ZgcCollector,
        GenZgcCollector,
    )
}

#: The five collectors the paper's main figures plot (GenZGC is available
#: by name as a sixth, as in the paper's appendix).
COLLECTOR_NAMES = ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")

__all__ = [
    "Collector",
    "CyclePlan",
    "GcTuning",
    "PauseSegment",
    "SerialCollector",
    "ParallelCollector",
    "G1Collector",
    "ShenandoahCollector",
    "ZgcCollector",
    "GenZgcCollector",
    "COLLECTORS",
    "COLLECTOR_NAMES",
]
