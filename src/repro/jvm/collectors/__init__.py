"""The five OpenJDK 21 production collector models.

``COLLECTORS`` maps each collector's name to its class, ordered by the year
its design entered the JVM — the ordering the paper uses when it observes
that newer collectors consume more resources than older ones.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.jvm.collectors.base import Collector, CyclePlan, GcTuning, PauseSegment
from repro.jvm.collectors.g1 import G1Collector
from repro.jvm.collectors.genzgc import GenZgcCollector
from repro.jvm.collectors.parallel import ParallelCollector
from repro.jvm.collectors.serial import SerialCollector
from repro.jvm.collectors.shenandoah import ShenandoahCollector
from repro.jvm.collectors.zgc import ZgcCollector

COLLECTORS: Dict[str, Type[Collector]] = {
    cls.NAME: cls
    for cls in (
        SerialCollector,
        ParallelCollector,
        G1Collector,
        ShenandoahCollector,
        ZgcCollector,
        GenZgcCollector,
    )
}

#: The five collectors the paper's main figures plot (GenZGC is available
#: by name as a sixth, as in the paper's appendix).
COLLECTOR_NAMES = ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")


class UnknownCollectorError(KeyError):
    """An unregistered collector name reached an API boundary.

    Subclasses :class:`KeyError` so existing ``except KeyError`` handlers
    (and tests) keep working, but renders its message without KeyError's
    quoting so the hint stays readable.
    """

    def __init__(self, name: object) -> None:
        self.name = name
        extras = sorted(set(COLLECTORS) - set(COLLECTOR_NAMES))
        message = (
            f"unknown collector {name!r}; choose from {', '.join(COLLECTOR_NAMES)}"
            + (f" (also available: {', '.join(extras)})" if extras else "")
        )
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


def resolve_collector(name: str) -> str:
    """Validate a collector name at an API boundary.

    Returns the name unchanged when it is registered; raises
    :class:`UnknownCollectorError` (a :class:`KeyError`) listing the valid
    names otherwise — so a typo fails fast with a hint instead of as a
    deep KeyError inside the simulator.
    """
    if not isinstance(name, str):
        raise TypeError(f"collector name must be a string, got {name!r}")
    if name not in COLLECTORS:
        raise UnknownCollectorError(name)
    return name


__all__ = [
    "Collector",
    "CyclePlan",
    "GcTuning",
    "PauseSegment",
    "SerialCollector",
    "ParallelCollector",
    "G1Collector",
    "ShenandoahCollector",
    "ZgcCollector",
    "GenZgcCollector",
    "COLLECTORS",
    "COLLECTOR_NAMES",
    "UnknownCollectorError",
    "resolve_collector",
]
