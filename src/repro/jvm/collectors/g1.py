"""G1, the Garbage-First collector (2009): regional, incremental, partly
concurrent.

G1 splits the heap into regions, keeps pauses short by evacuating a few
regions at a time, and marks the old generation concurrently.  The model
captures the three behaviours that matter for the paper's analysis:

- frequent *young* pauses with a per-pause remembered-set overhead,
- a *concurrent mark* cycle (triggered at an occupancy threshold, the
  analogue of ``InitiatingHeapOccupancyPercent``) that burns CPU on
  otherwise-idle cores, followed by a handful of more expensive *mixed*
  pauses that reclaim old-generation garbage,
- a *full GC* fallback when the heap is too tight for evacuation —
  the reason G1 degrades sharply near the minimum heap.
"""

from __future__ import annotations

from repro.jvm import barriers as barrier_model
from repro.jvm.collectors.base import Collector, CyclePlan, PauseSegment
from repro.jvm.heap import Heap


class G1Collector(Collector):
    """Garbage-first regional collector."""

    NAME = "G1"
    YEAR = 2009
    MUTATOR_TAX = 1.04  # SATB write barrier + remembered-set maintenance
    BARRIERS = barrier_model.SATB_RSET
    RESERVE_FRACTION = 0.03

    YOUNG_FRACTION = 0.45
    #: Occupancy (fraction of usable) that initiates concurrent marking.
    IHOP = 0.45
    #: Old occupancy that forces the full-GC fallback.
    FULL_GC_THRESHOLD = 0.92
    #: Extra fixed pause cost per young pause: remembered-set scan/update.
    RSET_PAUSE_S = 0.0004
    #: Mixed pauses scheduled after each concurrent mark completes.
    MIXED_PAUSE_COUNT = 3

    def __init__(self, spec, machine, tuning, rng):
        super().__init__(spec, machine, tuning, rng)
        self._marking = False
        self._mixed_remaining = 0
        self._mark_cpu_s = 0.0

    def stw_workers(self) -> int:
        return min(self.machine.cores, 16)

    def concurrent_workers(self) -> float:
        # ConcGCThreads defaults to a quarter of the parallel workers.
        return max(1.0, self.stw_workers() / 4.0)

    def trigger_free_mb(self, heap: Heap) -> float:
        # Inlined eden_capacity_mb with identical float grouping; this
        # runs once per simulator loop step.
        headroom = heap.usable_mb - heap.live_mb
        eden = self.YOUNG_FRACTION * headroom if headroom > 0.0 else 0.0
        if eden < 0.5:
            eden = 0.5
        free = headroom - eden
        return free if free > 0.0 else 0.0

    def plan_cycle(self, heap: Heap) -> CyclePlan:
        if heap.live_mb >= self.FULL_GC_THRESHOLD * heap.usable_mb:
            return self._full_plan(heap)
        if self._mixed_remaining > 0:
            return self._mixed_plan(heap)
        # IHOP triggers on old-generation occupancy, like
        # InitiatingHeapOccupancyPercent.
        if not self._marking and heap.live_mb >= self.IHOP * heap.usable_mb:
            return self._concurrent_mark_plan(heap)
        return self._young_plan(heap)

    def background_concurrent_cpu_s(self, alloc_mb: float, wall_s: float) -> float:
        # Concurrent refinement (dirty-card processing proportional to
        # mutation activity) plus the concurrent marking performed this
        # run.  Both run on otherwise-idle cores and never block young
        # collections — which is why G1 marking, unlike a Shenandoah/ZGC
        # cycle, cannot stall allocation.
        refinement = 0.05 * alloc_mb / self.tuning.concurrent_rate_mb_s
        return refinement + self._mark_cpu_s

    def notify_cycle_complete(self, heap: Heap, plan: CyclePlan) -> None:
        if plan.kind == "concurrent-mark":
            self._marking = False
            self._mixed_remaining = self.MIXED_PAUSE_COUNT
        elif plan.kind == "mixed":
            self._mixed_remaining = max(0, self._mixed_remaining - 1)

    # ------------------------------------------------------------------
    def _young_pause(self, heap: Heap, scale: float, kind: str):
        survivors = heap.young_mb * self.spec.survival_rate
        work = (survivors + 0.02 * heap.live_mb) * scale
        # Same floats as stw_pause_for plus the remembered-set surcharge,
        # built as one segment instead of construct-then-copy.
        duration = self.tuning.pause_floor_s + work / (
            self.tuning.copy_rate_mb_s * self._stw_speedup
        )
        return PauseSegment(
            duration_s=duration + self.RSET_PAUSE_S,
            workers=self._stw_workers_f,
            kind=kind,
        )

    def _young_plan(self, heap: Heap) -> CyclePlan:
        return CyclePlan(
            kind="young",
            pre_pauses=(self._young_pause(heap, 1.0, "young"),),
            survival_rate=self.spec.survival_rate,
            promotion_fraction=self.spec.promotion_fraction,
        )

    def _concurrent_mark_plan(self, heap: Heap) -> CyclePlan:
        self._marking = True
        # The young pause doubles as the initial-mark pause.  Marking then
        # traces the live graph concurrently, but — unlike a full
        # Shenandoah/ZGC cycle — young collections proceed while it runs,
        # so it never blocks allocation: its CPU is accounted as background
        # work and the cycle contributes only its remark pause.
        self._mark_cpu_s += 1.2 * heap.live_mb / self.tuning.concurrent_rate_mb_s
        remark = self.stw_pause_for(
            0.08 * heap.live_mb, self.tuning.mark_rate_mb_s, kind="remark"
        )
        return CyclePlan(
            kind="concurrent-mark",
            pre_pauses=(self._young_pause(heap, 1.1, "initial-mark"), remark),
            survival_rate=self.spec.survival_rate,
            promotion_fraction=self.spec.promotion_fraction,
        )

    def _mixed_plan(self, heap: Heap) -> CyclePlan:
        # A mixed pause is a young pause that also evacuates old regions:
        # more expensive, and it gives back a share of the old garbage
        # accumulated since the last mark.
        old_extra = max(heap.live_mb - self.live_footprint_mb(), 0.0)
        reclaim = old_extra / self.MIXED_PAUSE_COUNT
        return CyclePlan(
            kind="mixed",
            pre_pauses=(self._young_pause(heap, 1.3, "mixed"),),
            survival_rate=self.spec.survival_rate,
            promotion_fraction=self.spec.promotion_fraction,
            old_reclaim_mb=reclaim,
        )

    def _full_plan(self, heap: Heap) -> CyclePlan:
        live = self.live_footprint_mb()
        mark = self.stw_pause_for(heap.occupied_mb, self.tuning.mark_rate_mb_s, kind="full-mark")
        compact = self.stw_pause_for(live, self.tuning.copy_rate_mb_s, kind="full-compact")
        self._marking = False
        self._mixed_remaining = 0
        return CyclePlan(
            kind="full",
            pre_pauses=(mark, compact),
            full_live_target_mb=live,
        )
