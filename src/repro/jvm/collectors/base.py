"""Collector framework: the interface every simulated GC implements.

A collector is instantiated once per simulated run.  The simulator asks it
two questions, repeatedly:

1. :meth:`Collector.trigger_free_mb` — at what level of free space should
   the next collection cycle begin?
2. :meth:`Collector.plan_cycle` — what does that cycle look like: which
   stop-the-world segments, how much concurrent work on how many threads,
   what the heap looks like afterwards, and whether allocation is paced
   (throttled) while the cycle runs.

Everything that differentiates Serial (1998) from ZGC (2018) — pause
structure, parallelism, barrier taxes, footprint, pacing — is expressed
through this interface, so the simulator loop itself is collector-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.jvm import barriers as barrier_model
from repro.jvm.cpu import Machine
from repro.jvm.heap import Heap


@dataclass(frozen=True)
class GcTuning:
    """Throughput constants shared by the collector models.

    These are the simulator's analogue of microarchitectural reality: how
    fast a GC worker thread can mark, copy, or do concurrent work.  They are
    deliberately centralized so calibration touches one place.
    """

    # STW work rates, MB per second per worker thread.
    mark_rate_mb_s: float = 2000.0
    copy_rate_mb_s: float = 1600.0
    # Concurrent work is slower per thread: it contends with mutators and
    # pays barrier-related synchronization costs.
    concurrent_rate_mb_s: float = 1100.0
    # Fixed per-pause cost: safepoint rendezvous, root scanning floor.
    pause_floor_s: float = 0.00015
    # Sub-linear parallel scaling exponent for STW worker teams.
    efficiency_exponent: float = 0.85


class PauseSegment:
    """One stop-the-world segment of a cycle.

    A plain ``__slots__`` class, not a dataclass: collectors build one to
    three of these per GC cycle, making construction cost part of the
    simulator's innermost loop.  Treat instances as immutable.
    """

    __slots__ = ("duration_s", "workers", "kind")

    def __init__(self, duration_s: float, workers: float, kind: str) -> None:
        if duration_s < 0:
            raise ValueError("pause duration cannot be negative")
        if workers <= 0:
            raise ValueError("pause must use at least a fraction of a worker")
        self.duration_s = duration_s
        self.workers = workers
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PauseSegment(duration_s={self.duration_s!r}, "
            f"workers={self.workers!r}, kind={self.kind!r})"
        )


class CyclePlan:
    """A complete description of one collection cycle.

    The simulator executes ``pre_pauses``, then the concurrent phase (if
    any), then ``post_pauses``, then applies the heap effect described by
    ``survival_rate``/``promotion_fraction`` (young-style accounting) or
    ``full_live_target_mb`` (full-compaction accounting).  For concurrent
    plans, allocation performed *during* the cycle survives as floating
    garbage.  ``pace_alloc_to_mb_s`` caps the allocation rate during the
    concurrent phase (Shenandoah's pacer); ``None`` means unpaced, and the
    mutator stalls outright if it exhausts the heap mid-cycle.

    Like :class:`PauseSegment`, a plain ``__slots__`` class built once per
    GC cycle on the simulator's hot path.  Treat instances as immutable.
    """

    __slots__ = (
        "kind",
        "pre_pauses",
        "concurrent_work_mb",
        "concurrent_threads",
        "post_pauses",
        "survival_rate",
        "promotion_fraction",
        "full_live_target_mb",
        "pace_alloc_to_mb_s",
        "old_reclaim_mb",
    )

    def __init__(
        self,
        kind: str,
        pre_pauses: Tuple[PauseSegment, ...] = (),
        concurrent_work_mb: float = 0.0,
        concurrent_threads: float = 0.0,
        post_pauses: Tuple[PauseSegment, ...] = (),
        survival_rate: Optional[float] = None,
        promotion_fraction: Optional[float] = None,
        full_live_target_mb: Optional[float] = None,
        pace_alloc_to_mb_s: Optional[float] = None,
        # Old-generation garbage handed back by this cycle (G1 mixed pauses).
        old_reclaim_mb: float = 0.0,
    ) -> None:
        if concurrent_work_mb < 0:
            raise ValueError("concurrent work cannot be negative")
        if concurrent_work_mb > 0 and concurrent_threads <= 0:
            raise ValueError("concurrent work requires concurrent threads")
        is_young = survival_rate is not None
        is_full = full_live_target_mb is not None
        if is_young == is_full:
            raise ValueError("a cycle is either young-style or full-style")
        if is_young and promotion_fraction is None:
            raise ValueError("young-style cycles need a promotion fraction")
        self.kind = kind
        self.pre_pauses = pre_pauses
        self.concurrent_work_mb = concurrent_work_mb
        self.concurrent_threads = concurrent_threads
        self.post_pauses = post_pauses
        self.survival_rate = survival_rate
        self.promotion_fraction = promotion_fraction
        self.full_live_target_mb = full_live_target_mb
        self.pace_alloc_to_mb_s = pace_alloc_to_mb_s
        self.old_reclaim_mb = old_reclaim_mb


class Collector(ABC):
    """Base class for the five production collector models.

    Subclasses set the class attributes and implement the trigger and
    planning methods.  ``spec`` is the workload spec (duck-typed here to
    avoid a circular import; see :mod:`repro.workloads.spec`).
    """

    NAME: str = "abstract"
    YEAR: int = 0
    COMPRESSED_OOPS: bool = True
    #: Multiplier on mutator CPU from write/read barriers and allocation
    #: path overhead, relative to a barrier-free runtime, for the
    #: suite-median workload.  The per-workload tax (``self.mutator_tax``)
    #: rescales the barrier portion by the workload's operation rates.
    MUTATOR_TAX: float = 1.0
    #: Which mutator operations this collector's barriers instrument.
    BARRIERS: "barrier_model.BarrierSet" = barrier_model.CARD_TABLE
    #: Fraction of heap capacity reserved for collector metadata and, for
    #: evacuating collectors, the evacuation reserve.
    RESERVE_FRACTION: float = 0.02

    def __init__(self, spec, machine: Machine, tuning: GcTuning, rng: np.random.Generator):
        self.spec = spec
        self.machine = machine
        self.tuning = tuning
        self.rng = rng
        #: Reachable memory accumulated beyond the workload's base live set
        #: (leakage, GLK).  Collections can never reclaim it.
        self.extra_live_mb = 0.0
        #: Per-workload mutator tax: the baseline barrier cost rescaled by
        #: this workload's reference-operation rates.
        self.mutator_tax = barrier_model.mutator_tax(
            self.MUTATOR_TAX, self.BARRIERS, getattr(spec, "operation_rates", None)
        )
        # stw_pause_for is the hottest call in the simulator, and both of
        # its non-argument inputs are per-instance constants (the machine
        # and tuning never change after construction) — compute them once.
        workers = self.stw_workers()
        self._stw_workers_f = float(workers)
        self._stw_speedup = self.machine.parallel_speedup(
            workers, self.tuning.efficiency_exponent
        )
        # live_footprint_mb runs on every full-GC plan; its first term is
        # a spec constant (only extra_live_mb varies over a run).
        self._live_base_mb = self.spec.live_mb * self.footprint_factor()

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------
    def footprint_factor(self) -> float:
        """Live-set inflation relative to the compressed-oops baseline.

        Collectors without compressed pointers (ZGC) carry a per-workload
        inflation given by the GMU/GMD ratio of nominal minimum heaps.
        """
        if self.COMPRESSED_OOPS:
            return 1.0
        return max(1.0, self.spec.minheap_nocomp_mb / self.spec.minheap_mb)

    def live_footprint_mb(self) -> float:
        """The workload's long-lived live set as this collector stores it,
        including any leaked (reachable, never-collectable) memory."""
        return self._live_base_mb + self.extra_live_mb

    def min_heap_mb(self) -> float:
        """Smallest heap this collector can run the workload in."""
        live = self.live_footprint_mb()
        headroom = max(0.5, 0.04 * live)
        return (live + headroom) / (1.0 - self.RESERVE_FRACTION)

    # ------------------------------------------------------------------
    # Parallel team helpers
    # ------------------------------------------------------------------
    def stw_workers(self) -> int:
        """Worker threads used in stop-the-world pauses."""
        return 1

    def team_speedup(self, workers: int) -> float:
        return self.machine.parallel_speedup(workers, self.tuning.efficiency_exponent)

    def stw_pause_for(self, work_mb: float, rate_mb_s: float, kind: str) -> PauseSegment:
        """Build a pause segment for ``work_mb`` of STW work."""
        duration = self.tuning.pause_floor_s + work_mb / (rate_mb_s * self._stw_speedup)
        return PauseSegment(duration_s=duration, workers=self._stw_workers_f, kind=kind)

    # ------------------------------------------------------------------
    # The two questions the simulator asks
    # ------------------------------------------------------------------
    @abstractmethod
    def trigger_free_mb(self, heap: Heap) -> float:
        """Free space (MB) at or below which the next cycle should start."""

    @abstractmethod
    def plan_cycle(self, heap: Heap) -> CyclePlan:
        """Plan the cycle to run now, given heap state."""

    def notify_cycle_complete(self, heap: Heap, plan: CyclePlan) -> None:
        """Hook for collectors with internal state machines (G1)."""

    def background_concurrent_cpu_s(self, alloc_mb: float, wall_s: float) -> float:
        """CPU burned by always-on collector service threads over a run.

        Stop-the-world collectors have none.  G1's concurrent refinement
        threads process dirty cards in proportion to mutation activity —
        the main reason its task clock diverges from its wall clock on
        workloads that leave cores idle (the paper's cassandra analysis).
        """
        return 0.0

    # ------------------------------------------------------------------
    # Young-generation sizing shared by the generational collectors
    # ------------------------------------------------------------------
    def eden_capacity_mb(self, heap: Heap, young_fraction: float) -> float:
        """Eden capacity given current old occupancy."""
        headroom = max(heap.usable_mb - heap.live_mb, 0.0)
        return max(0.5, young_fraction * headroom)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.YEAR})>"
