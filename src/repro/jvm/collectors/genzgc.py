"""Generational ZGC (2023, JEP 439): ZGC with a young generation.

The paper's latency discussion mentions GenZGC alongside Shenandoah and
ZGC, and its appendix figures cover "OpenJDK 21's six production garbage
collectors".  Generational ZGC keeps ZGC's colored-pointer concurrency and
sub-millisecond pauses but collects a young generation separately, so most
cycles trace only recent allocation instead of the whole live set —
dramatically cheaper under the weak generational hypothesis, at the price
of slightly heavier barriers (remembered-set maintenance on top of the
load barrier).
"""

from __future__ import annotations

from repro.jvm.collectors.base import CyclePlan
from repro.jvm.collectors.zgc import ZgcCollector
from repro.jvm.heap import Heap


class GenZgcCollector(ZgcCollector):
    """Generational colored-pointer collector (ZGC + young generation)."""

    NAME = "GenZGC"
    YEAR = 2023
    MUTATOR_TAX = 1.08  # load barrier + store barrier for remembered sets

    #: Young cycles per old (full live-set) cycle, steady state.
    YOUNG_CYCLES_PER_OLD = 8
    #: Work multiple for a young cycle: survivors plus scan of the young
    #: region set.
    YOUNG_CYCLE_WORK_FACTOR = 1.2

    def __init__(self, spec, machine, tuning, rng):
        super().__init__(spec, machine, tuning, rng)
        self._young_cycles_since_old = 0

    def _old_cycle_due(self) -> bool:
        return self._young_cycles_since_old >= self.YOUNG_CYCLES_PER_OLD

    def cycle_work_mb(self, heap: Heap) -> float:
        if self._old_cycle_due():
            return super().cycle_work_mb(heap)
        survivors = heap.young_mb * self.spec.survival_rate
        return self.YOUNG_CYCLE_WORK_FACTOR * (survivors + 0.1 * heap.young_mb)

    def plan_cycle(self, heap: Heap) -> CyclePlan:
        if self._old_cycle_due():
            return super().plan_cycle(heap)
        return CyclePlan(
            kind="concurrent-young",
            pre_pauses=(self._tiny_pause("young-mark-start"),),
            concurrent_work_mb=self.cycle_work_mb(heap),
            concurrent_threads=self.concurrent_workers(heap),
            post_pauses=(self._tiny_pause("young-relocate-start"),),
            survival_rate=self.spec.survival_rate,
            promotion_fraction=self.spec.promotion_fraction,
            pace_alloc_to_mb_s=None,
        )

    def notify_cycle_complete(self, heap: Heap, plan: CyclePlan) -> None:
        if plan.kind == "concurrent-young":
            self._young_cycles_since_old += 1
        else:
            self._young_cycles_since_old = 0
        super().notify_cycle_complete(heap, plan)
