"""Shenandoah (2014): concurrent mark *and* evacuation, with a pacer.

Shenandoah keeps pauses tiny by doing marking, evacuation, and reference
updating concurrently, paying for it with a load-reference barrier in the
mutator and a lot of concurrent CPU.  Its distinguishing mechanism in the
paper's analysis is the *pacer*: when the application allocates faster than
the collector can reclaim, Shenandoah stalls allocating threads a little at
a time ("taxing" allocations) so the cycle can finish.

This is what produces the paper's lusearch result (Section 6.2): wall-clock
overhead beyond 2x at every heap size — the 32 allocating client threads
are throttled — while the *task clock* overhead is far smaller, because
throttled threads are off-CPU.
"""

from __future__ import annotations

from repro.jvm import barriers as barrier_model
from repro.jvm.collectors.base import CyclePlan
from repro.jvm.collectors.concurrent import ConcurrentCollector
from repro.jvm.heap import Heap


class ShenandoahCollector(ConcurrentCollector):
    """Concurrent compacting collector with pacing."""

    NAME = "Shenandoah"
    YEAR = 2014
    MUTATOR_TAX = 1.09  # load-reference barrier + SATB
    BARRIERS = barrier_model.LOAD_REFERENCE
    RESERVE_FRACTION = 0.08  # evacuation reserve

    CYCLE_WORK_FACTOR = 1.35
    #: Pacer headroom: the fraction of free space the pacer budgets for
    #: allocation during a cycle.  Deliberately conservative — the pacer
    #: reserves space for evacuation and prediction error, which is why
    #: allocation-heavy workloads stay throttled even at generous heaps.
    PACE_HEADROOM = 0.55

    def default_concurrent_workers(self) -> float:
        # ConcGCThreads for Shenandoah defaults to half the parallel team.
        return max(1.0, self.stw_workers() / 2.0)

    def _brief_pause(self, heap: Heap, fraction: float, kind: str):
        # Init/final mark pauses scan roots; cost scales weakly with live.
        return self.stw_pause_for(
            fraction * self.live_footprint_mb(), self.tuning.mark_rate_mb_s, kind
        )

    def plan_cycle(self, heap: Heap) -> CyclePlan:
        duration = self.cycle_duration_s(heap)
        pace = self.PACE_HEADROOM * heap.free_mb / duration if duration > 0 else None
        return CyclePlan(
            kind="concurrent",
            pre_pauses=(self._brief_pause(heap, 0.010, "init-mark"),),
            concurrent_work_mb=self.cycle_work_mb(heap),
            concurrent_threads=self.concurrent_workers(heap),
            post_pauses=(self._brief_pause(heap, 0.015, "final-mark"),),
            full_live_target_mb=self.live_footprint_mb(),
            pace_alloc_to_mb_s=pace,
        )
