"""ZGC (2018): fully concurrent with colored pointers — and no compressed
oops.

ZGC's pauses are sub-millisecond regardless of heap size; everything else
happens concurrently behind load barriers.  Two modelled consequences drive
the paper's findings:

- **Footprint**: ZGC does not support compressed pointers, so the live set
  inflates by the workload's GMU/GMD ratio.  This is why the paper plots
  ZGC (marked ZGC*) only at heap multiples where it can actually run, and
  why its curves begin at larger multiples in Figure 1.
- **Allocation stalls**: without a pacer, a mutator that exhausts the heap
  mid-cycle blocks outright until the cycle completes.
"""

from __future__ import annotations

from repro.jvm import barriers as barrier_model
from repro.jvm.collectors.base import CyclePlan
from repro.jvm.collectors.concurrent import ConcurrentCollector
from repro.jvm.heap import Heap


class ZgcCollector(ConcurrentCollector):
    """Concurrent, region-based, colored-pointer collector (non-generational,
    as the paper's ZGC*)."""

    NAME = "ZGC"
    YEAR = 2018
    COMPRESSED_OOPS = False
    MUTATOR_TAX = 1.07  # colored-pointer load barrier
    BARRIERS = barrier_model.COLORED_POINTER
    RESERVE_FRACTION = 0.06

    CYCLE_WORK_FACTOR = 1.25
    TRIGGER_SAFETY = 1.2

    def default_concurrent_workers(self) -> float:
        # ZGC sizes its concurrent team adaptively; a quarter of the cores
        # plus one matches its default heuristics at rest.
        return max(1.0, self.machine.cores / 4.0 + 1.0)

    def _tiny_pause(self, kind: str):
        # ZGC pauses do O(1) work: flip phases, scan thread-local roots.
        return self.stw_pause_for(0.0, self.tuning.mark_rate_mb_s, kind)

    def plan_cycle(self, heap: Heap) -> CyclePlan:
        return CyclePlan(
            kind="concurrent",
            pre_pauses=(self._tiny_pause("mark-start"),),
            concurrent_work_mb=self.cycle_work_mb(heap),
            concurrent_threads=self.concurrent_workers(heap),
            post_pauses=(self._tiny_pause("mark-end"), self._tiny_pause("relocate-start")),
            full_live_target_mb=self.live_footprint_mb(),
            pace_alloc_to_mb_s=None,  # no pacer: allocation stalls instead
        )
