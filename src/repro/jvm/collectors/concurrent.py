"""Shared machinery for the fully concurrent collectors (Shenandoah, ZGC).

Both collectors mark, evacuate, and update references while the application
runs, trigger cycles adaptively from projected allocation, and size their
concurrent worker team to the allocation pressure: when the mutator
allocates fast enough to exhaust the heap before a cycle would finish with
the default team, more workers are enlisted (up to the core count) — the
analogue of the adaptive ``ConcGCThreads`` heuristics in OpenJDK.  When
even a full team cannot keep up, the collector's degradation mechanism
takes over: Shenandoah paces (throttles) allocating threads, ZGC lets them
stall outright.
"""

from __future__ import annotations

from repro.jvm.collectors.base import Collector
from repro.jvm.heap import Heap


class ConcurrentCollector(Collector):
    """Base for collectors doing the bulk of their work concurrently."""

    #: Cycle work (mark + evacuate + update) in multiples of the live set.
    CYCLE_WORK_FACTOR = 1.3
    #: Fraction of young (freshly allocated) data a cycle must also scan
    #: (fresh objects are implicitly live but cheap to skip over).
    YOUNG_SCAN_FACTOR = 0.08
    #: Safety factor on the adaptive trigger.
    TRIGGER_SAFETY = 1.3
    #: Fraction of the free space a cycle should leave unconsumed when the
    #: team is sized (headroom against prediction error).
    PACING_TARGET = 0.6

    def stw_workers(self) -> int:
        return min(self.machine.cores, 16)

    def default_concurrent_workers(self) -> float:
        raise NotImplementedError

    def max_concurrent_workers(self) -> float:
        """Upper bound on the adaptive team.

        Concurrent collectors do not commandeer the whole machine: beyond
        roughly half the cores they throttle or stall the application
        instead.  This bounded expansion is what makes wall-clock overhead
        exceed task-clock overhead under allocation pressure (the paper's
        lusearch analysis): mutators sleep (wall grows) while GC CPU stays
        proportional to the work done.
        """
        return max(self.default_concurrent_workers(), self.machine.cores / 2.0)

    def cycle_work_mb(self, heap: Heap) -> float:
        return self.CYCLE_WORK_FACTOR * (
            heap.live_mb + self.YOUNG_SCAN_FACTOR * heap.young_mb
        )

    def concurrent_workers(self, heap: Heap) -> float:
        """Adaptive team size: enough workers that the cycle finishes within
        the allocation budget, within [default, core count]."""
        base = self.default_concurrent_workers()
        alloc_rate = self.spec.alloc_rate_mb_s
        if alloc_rate <= 0 or heap.free_mb <= 0:
            return base
        budget_s = self.PACING_TARGET * heap.free_mb / alloc_rate
        if budget_s <= 0:
            return float(self.machine.cores)
        needed_speedup = self.cycle_work_mb(heap) / (
            self.tuning.concurrent_rate_mb_s * budget_s
        )
        if needed_speedup <= 1.0:
            needed = 1.0
        else:
            needed = needed_speedup ** (1.0 / self.tuning.efficiency_exponent)
        return float(min(max(base, needed), self.max_concurrent_workers()))

    def cycle_duration_s(self, heap: Heap) -> float:
        workers = self.concurrent_workers(heap)
        rate = self.tuning.concurrent_rate_mb_s * self.machine.parallel_speedup(
            max(int(workers), 1), self.tuning.efficiency_exponent
        )
        return self.cycle_work_mb(heap) / rate

    def trigger_free_mb(self, heap: Heap) -> float:
        expected_alloc = self.spec.alloc_rate_mb_s * self.cycle_duration_s(heap)
        headroom = max(heap.usable_mb - self.live_footprint_mb(), 0.0)
        trigger = self.TRIGGER_SAFETY * expected_alloc
        # Never wait past 90% of headroom, never trigger below 10% used.
        return float(min(max(trigger, 0.10 * headroom), 0.90 * headroom))
