"""Instrumented allocation profiling: the bytecode-instrumentation analogue.

The suite's allocation-group statistics (AOA/AOL/AOM/AOS) come from
"time-consuming bytecode instrumentation" of real executions: every
allocation is observed individually.  The simulator's analogue samples
individual objects from the workload's fitted size distribution and
profiles them — object counts, size percentiles, and a histogram — and
derives the heap-structural consequences the aggregate simulator cannot
see:

- **TLAB waste**: the slack left at the end of each thread-local
  allocation buffer when the next object does not fit;
- **humongous objects** (G1): objects larger than half a region are
  allocated as contiguous region sequences, stranding the tail of the
  last region;
- **region-tail fragmentation** for region-based collectors generally.

Instrumented profiling is deliberately separate from the fast simulator
(as in the suite, where instrumented runs are a separate, slower
measurement campaign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.rng import generator_for
from repro.workloads.spec import WorkloadSpec

#: Default sample size: large enough for stable 10th/90th percentiles.
DEFAULT_SAMPLE_OBJECTS = 200_000

#: G1's default region size on heaps in the suite's range, bytes.
DEFAULT_REGION_BYTES = 1 << 20  # 1 MiB
#: Typical TLAB size, bytes.
DEFAULT_TLAB_BYTES = 256 << 10  # 256 KiB


@dataclass(frozen=True)
class AllocationProfile:
    """Per-object allocation statistics from an instrumented run."""

    benchmark: str
    object_count: int
    total_bytes: float
    average_bytes: float
    p10_bytes: float
    median_bytes: float
    p90_bytes: float
    max_bytes: float
    #: (bucket upper bound in bytes, object count) pairs; power-of-two
    #: buckets, the shape allocation profilers report.
    histogram: Tuple[Tuple[float, int], ...]

    def nominal_statistics(self) -> Dict[str, float]:
        """The allocation-group nominal statistics this profile measures."""
        return {
            "AOA": self.average_bytes,
            "AOL": self.p90_bytes,
            "AOM": self.median_bytes,
            "AOS": self.p10_bytes,
        }


def _histogram(sizes: np.ndarray) -> Tuple[Tuple[float, int], ...]:
    if sizes.size == 0:
        return ()
    top = int(np.ceil(np.log2(max(float(sizes.max()), 1.0))))
    edges = [2.0**k for k in range(3, top + 1)]
    buckets = []
    lower = 0.0
    for edge in edges:
        count = int(np.count_nonzero((sizes > lower) & (sizes <= edge)))
        if count:
            buckets.append((edge, count))
        lower = edge
    return tuple(buckets)


def profile_allocation(
    spec: WorkloadSpec,
    sample_objects: int = DEFAULT_SAMPLE_OBJECTS,
    rng: Optional[np.random.Generator] = None,
) -> AllocationProfile:
    """Run the instrumented allocation profile for a workload.

    Raises ``ValueError`` for workloads without object-size statistics
    (tradebeans, tradesoap — the paper's 35-dimension benchmarks lack the
    bytecode-instrumentation metrics).
    """
    if spec.object_sizes is None:
        raise ValueError(f"{spec.name} has no object-size statistics to instrument")
    if sample_objects < 100:
        raise ValueError("need at least 100 sampled objects for stable percentiles")
    rng = rng if rng is not None else generator_for("instrument", spec.name)
    sizes = spec.object_sizes.sample(rng, sample_objects)
    return AllocationProfile(
        benchmark=spec.name,
        object_count=sample_objects,
        total_bytes=float(sizes.sum()),
        average_bytes=float(sizes.mean()),
        p10_bytes=float(np.percentile(sizes, 10)),
        median_bytes=float(np.percentile(sizes, 50)),
        p90_bytes=float(np.percentile(sizes, 90)),
        max_bytes=float(sizes.max()),
        histogram=_histogram(sizes),
    )


def tlab_waste_fraction(
    spec: WorkloadSpec,
    tlab_bytes: int = DEFAULT_TLAB_BYTES,
    sample_objects: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of TLAB space lost to end-of-buffer slack.

    Objects are bump-allocated into TLABs; when the next object does not
    fit, the tail is wasted and a fresh TLAB is taken (objects larger than
    a TLAB allocate directly and waste nothing here).
    """
    if spec.object_sizes is None:
        raise ValueError(f"{spec.name} has no object-size statistics")
    if tlab_bytes <= 0:
        raise ValueError("TLAB size must be positive")
    rng = rng if rng is not None else generator_for("tlab", spec.name)
    sizes = spec.object_sizes.sample(rng, sample_objects)
    used = 0.0
    wasted = 0.0
    remaining = float(tlab_bytes)
    for size in sizes:
        size = float(size)
        if size > tlab_bytes:
            used += size  # allocated outside TLABs
            continue
        if size > remaining:
            wasted += remaining
            remaining = float(tlab_bytes)
        remaining -= size
        used += size
    total = used + wasted
    return wasted / total if total > 0 else 0.0


def humongous_fraction(
    spec: WorkloadSpec,
    region_bytes: int = DEFAULT_REGION_BYTES,
    sample_objects: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of allocated bytes in humongous objects (G1).

    G1 treats any object of at least half a region as humongous: it takes
    whole regions and is never moved.  Workloads with heavy humongous
    traffic stress G1 disproportionately.
    """
    if spec.object_sizes is None:
        raise ValueError(f"{spec.name} has no object-size statistics")
    if region_bytes <= 0:
        raise ValueError("region size must be positive")
    rng = rng if rng is not None else generator_for("humongous", spec.name)
    sizes = spec.object_sizes.sample(rng, sample_objects)
    threshold = region_bytes / 2.0
    total = float(sizes.sum())
    if total == 0:
        return 0.0
    return float(sizes[sizes >= threshold].sum()) / total


def region_tail_waste_fraction(
    spec: WorkloadSpec,
    region_bytes: int = DEFAULT_REGION_BYTES,
    sample_objects: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Space stranded in the last region of each humongous allocation.

    A humongous object of N bytes occupies ``ceil(N / region)`` regions;
    the unused tail of the final region is dead space until the object
    dies.
    """
    if spec.object_sizes is None:
        raise ValueError(f"{spec.name} has no object-size statistics")
    rng = rng if rng is not None else generator_for("regiontail", spec.name)
    sizes = spec.object_sizes.sample(rng, sample_objects)
    threshold = region_bytes / 2.0
    humongous = sizes[sizes >= threshold]
    if humongous.size == 0:
        return 0.0
    regions = np.ceil(humongous / region_bytes)
    footprint = float((regions * region_bytes).sum())
    stranded = footprint - float(humongous.sum())
    total_footprint = float(sizes.sum()) + stranded
    return stranded / total_footprint if total_footprint > 0 else 0.0


def measure_allocation_statistics(spec: WorkloadSpec, sample_objects: int = DEFAULT_SAMPLE_OBJECTS) -> Dict[str, float]:
    """AOA/AOL/AOM/AOS measured back through instrumented profiling."""
    return profile_allocation(spec, sample_objects).nominal_statistics()
