"""JVMTI-analogue telemetry: what the harness can observe about a run.

The LBO methodology (Section 6.2) relies on capturing the easily
attributable stop-the-world periods of each collector via JVMTI; the
simulator's equivalent is this module.  It records every pause with its
kind and CPU cost, every allocation stall, every concurrent span, and the
heap occupancy after every collection (the appendix's post-GC heap-size
graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.jvm.timeline import ConcurrentSpan, Pause, Stall, Timeline


@dataclass(frozen=True)
class GcEvent:
    """One garbage-collection event in the GC log."""

    time: float
    kind: str
    pause_s: float
    reclaimed_mb: float
    heap_before_mb: float
    heap_after_mb: float


@dataclass
class Telemetry:
    """Accumulates observations during one simulated iteration."""

    pauses: List[Pause] = field(default_factory=list)
    stalls: List[Stall] = field(default_factory=list)
    spans: List[ConcurrentSpan] = field(default_factory=list)
    gc_log: List[GcEvent] = field(default_factory=list)
    pause_cpu_s: float = 0.0
    concurrent_cpu_s: float = 0.0

    def record_pause(self, start: float, duration: float, kind: str, workers: float) -> None:
        """Record a stop-the-world pause and its CPU cost."""
        self.pauses.append(Pause(start=start, duration=duration, kind=kind))
        self.pause_cpu_s += duration * workers

    def record_stall(self, start: float, duration: float) -> None:
        """Record an allocation stall (mutators blocked, not a GC pause)."""
        self.stalls.append(Stall(start=start, duration=duration))

    def record_span(self, span: ConcurrentSpan) -> None:
        """Record a span of concurrent collector work."""
        self.spans.append(span)
        self.concurrent_cpu_s += span.cpu_seconds

    def record_gc(self, event: GcEvent) -> None:
        self.gc_log.append(event)

    def record_background_cpu(self, cpu_s: float) -> None:
        """Account CPU burned by always-on collector service threads
        (e.g. G1 refinement) that never appears as a pause or cycle span."""
        if cpu_s < 0:
            raise ValueError("background CPU cannot be negative")
        self.concurrent_cpu_s += cpu_s

    @property
    def gc_count(self) -> int:
        return len(self.gc_log)

    @property
    def stw_wall_s(self) -> float:
        """Total wall time spent in stop-the-world pauses."""
        return sum(p.duration for p in self.pauses)

    @property
    def gc_cpu_s(self) -> float:
        """Total CPU attributable to the collector (pauses + concurrent)."""
        return self.pause_cpu_s + self.concurrent_cpu_s

    def heap_after_gc_series(self) -> List[Tuple[float, float]]:
        """(time, heap occupancy MB) after each collection, for the
        appendix's post-GC heap graphs."""
        return [(e.time, e.heap_after_mb) for e in self.gc_log]

    def average_footprint_mb(self, end_time: float) -> float:
        """Time-averaged heap occupancy — the 'area under the memory use
        curve' the paper suggests as a better net-footprint measure than
        the peak-driven minimum heap size (Section 4.2).

        Occupancy is integrated piecewise: between collections it ramps
        linearly from one GC's post-occupancy to the next GC's
        pre-occupancy.
        """
        if end_time <= 0:
            raise ValueError("end time must be positive")
        if not self.gc_log:
            return 0.0
        area = 0.0
        prev_time = 0.0
        prev_occupancy = 0.0
        for event in self.gc_log:
            dt = max(event.time - prev_time, 0.0)
            area += dt * (prev_occupancy + event.heap_before_mb) / 2.0
            prev_time = event.time
            prev_occupancy = event.heap_after_mb
        tail = max(end_time - prev_time, 0.0)
        area += tail * prev_occupancy
        return area / end_time

    def to_timeline(self, end_time: float) -> Timeline:
        """Freeze the observations into a :class:`Timeline`."""
        return Timeline(
            pauses=list(self.pauses),
            stalls=list(self.stalls),
            spans=list(self.spans),
            end_time=end_time,
        )
