"""JVMTI-analogue telemetry: what the harness can observe about a run.

The LBO methodology (Section 6.2) relies on capturing the easily
attributable stop-the-world periods of each collector via JVMTI; the
simulator's equivalent is this module.  It comes in two **fidelity
tiers**, because most of the harness's cycles go to runs whose per-event
detail nobody ever reads (the minimum-heap binary search discards entire
``RunResult`` objects; LBO sweep cells reduce to a handful of floats):

- :class:`FullTelemetry` (the historical :class:`Telemetry`, which
  remains its public name) records every pause with its kind and CPU
  cost, every allocation stall, every concurrent span, and the heap
  occupancy after every collection — the JVMTI-callback analogue, and
  the only tier that can produce a :class:`~repro.jvm.timeline.Timeline`
  or a GC log.
- :class:`AggregateTelemetry` keeps scalar accumulators only — pause and
  concurrent CPU, STW wall, stall wall, GC count, and the footprint
  integral — the end-of-run-counter analogue (``getrusage``, perf
  counters).  No per-event lists exist, so the hot loop allocates no
  objects.

Both tiers implement the :class:`TelemetrySink` protocol the simulator
records through, and the **contract is bit-identical headline scalars**:
every accumulator performs the same floating-point additions, in the same
order, as the full tier's event-list reductions, so a caller that only
consumes scalars cannot tell the tiers apart (pinned by
``tests/test_fidelity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover - 3.7 fallback
    Protocol = object  # type: ignore[assignment]

from repro.jvm.timeline import ConcurrentSpan, Pause, Stall, Timeline

#: Fidelity tier names: what a simulated run records about itself.
FIDELITY_AGGREGATE = "aggregate"
FIDELITY_FULL = "full"
FIDELITIES = (FIDELITY_AGGREGATE, FIDELITY_FULL)


class FidelityError(ValueError):
    """Per-event detail was requested from an aggregate-fidelity run.

    Raised by full-only consumers (timelines, GC logs, request replay,
    the flight recorder) when handed a result simulated with
    ``fidelity='aggregate'`` — re-run with ``fidelity='full'`` to carry
    the detail.
    """


def resolve_fidelity(fidelity: Optional[str], default: str = FIDELITY_FULL) -> str:
    """Validate a fidelity tier name; ``None`` means "caller's default".

    ``None`` is the *auto* tier: each consumer resolves it to what it
    actually needs (aggregate for scalar-only sweeps like the min-heap
    search and LBO, full for timeline/GC-log/latency consumers).
    """
    if fidelity is None:
        return default
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; choose from {FIDELITIES} (or None for auto)"
        )
    return fidelity


class TelemetrySink(Protocol):
    """What the simulator records through, whatever the fidelity tier.

    All methods take plain scalars so the aggregate tier never has to
    build event objects; :attr:`wants_events` lets instrumentation skip
    computing full-only detail (the ``NullRecorder.enabled`` pattern).
    """

    #: Tier name: one of :data:`FIDELITIES`.
    fidelity: str
    #: True when the sink retains per-event detail — callers may skip
    #: computing values that only feed event records when this is False.
    wants_events: bool

    pause_cpu_s: float
    concurrent_cpu_s: float
    stw_wall_s: float
    stall_wall_s: float
    gc_count: int

    def record_pause(self, start: float, duration: float, kind: str, workers: float) -> None:
        """Record a stop-the-world pause and its CPU cost."""

    def record_stall(self, start: float, duration: float) -> None:
        """Record an allocation stall (mutators blocked, not a GC pause)."""

    def record_concurrent(
        self, start: float, end: float, gc_threads: float, dilation: float
    ) -> None:
        """Record a span of concurrent collector work."""

    def record_collection(
        self,
        time: float,
        kind: str,
        pause_s: float,
        reclaimed_mb: float,
        heap_before_mb: float,
        heap_after_mb: float,
    ) -> None:
        """Record one completed garbage collection."""

    def record_background_cpu(self, cpu_s: float) -> None:
        """Account CPU burned by always-on collector service threads."""

    def average_footprint_mb(self, end_time: float) -> float:
        """Time-averaged heap occupancy over the iteration."""


@dataclass(frozen=True)
class GcEvent:
    """One garbage-collection event in the GC log."""

    time: float
    kind: str
    pause_s: float
    reclaimed_mb: float
    heap_before_mb: float
    heap_after_mb: float


@dataclass
class Telemetry:
    """Full-fidelity telemetry: every observation of one simulated iteration.

    The JVMTI-callback tier: per-event lists feed timelines, GC logs,
    request replay, and the flight recorder.  Headline scalars
    (``stw_wall_s``, ``stall_wall_s``, ``gc_count``, the CPU totals) are
    maintained as running accumulators alongside the lists — never
    recomputed by walking them — so reading one mid-run costs O(1)
    instead of O(events), and so they are the *same* floating-point sums
    the scalar-only :class:`AggregateTelemetry` produces.
    """

    pauses: List[Pause] = field(default_factory=list)
    stalls: List[Stall] = field(default_factory=list)
    spans: List[ConcurrentSpan] = field(default_factory=list)
    gc_log: List[GcEvent] = field(default_factory=list)
    pause_cpu_s: float = 0.0
    concurrent_cpu_s: float = 0.0
    stw_wall_s: float = 0.0
    stall_wall_s: float = 0.0
    gc_count: int = 0

    fidelity = FIDELITY_FULL
    wants_events = True

    def record_pause(self, start: float, duration: float, kind: str, workers: float) -> None:
        """Record a stop-the-world pause and its CPU cost."""
        self.pauses.append(Pause(start=start, duration=duration, kind=kind))
        self.pause_cpu_s += duration * workers
        self.stw_wall_s += duration

    def record_stall(self, start: float, duration: float) -> None:
        """Record an allocation stall (mutators blocked, not a GC pause)."""
        self.stalls.append(Stall(start=start, duration=duration))
        self.stall_wall_s += duration

    def record_span(self, span: ConcurrentSpan) -> None:
        """Record a span of concurrent collector work."""
        self.spans.append(span)
        self.concurrent_cpu_s += span.cpu_seconds

    def record_concurrent(
        self, start: float, end: float, gc_threads: float, dilation: float
    ) -> None:
        """Record a span of concurrent collector work from its scalars."""
        self.record_span(
            ConcurrentSpan(start=start, end=end, gc_threads=gc_threads, dilation=dilation)
        )

    def record_gc(self, event: GcEvent) -> None:
        self.gc_log.append(event)
        self.gc_count += 1

    def record_collection(
        self,
        time: float,
        kind: str,
        pause_s: float,
        reclaimed_mb: float,
        heap_before_mb: float,
        heap_after_mb: float,
    ) -> None:
        """Record one completed garbage collection from its scalars."""
        self.record_gc(
            GcEvent(
                time=time,
                kind=kind,
                pause_s=pause_s,
                reclaimed_mb=reclaimed_mb,
                heap_before_mb=heap_before_mb,
                heap_after_mb=heap_after_mb,
            )
        )

    def record_background_cpu(self, cpu_s: float) -> None:
        """Account CPU burned by always-on collector service threads
        (e.g. G1 refinement) that never appears as a pause or cycle span."""
        if cpu_s < 0:
            raise ValueError("background CPU cannot be negative")
        self.concurrent_cpu_s += cpu_s

    @property
    def gc_cpu_s(self) -> float:
        """Total CPU attributable to the collector (pauses + concurrent)."""
        return self.pause_cpu_s + self.concurrent_cpu_s

    def heap_after_gc_series(self) -> List[Tuple[float, float]]:
        """(time, heap occupancy MB) after each collection, for the
        appendix's post-GC heap graphs."""
        return [(e.time, e.heap_after_mb) for e in self.gc_log]

    def average_footprint_mb(self, end_time: float) -> float:
        """Time-averaged heap occupancy — the 'area under the memory use
        curve' the paper suggests as a better net-footprint measure than
        the peak-driven minimum heap size (Section 4.2).

        Occupancy is integrated piecewise: between collections it ramps
        linearly from one GC's post-occupancy to the next GC's
        pre-occupancy.
        """
        if end_time <= 0:
            raise ValueError("end time must be positive")
        if not self.gc_log:
            return 0.0
        area = 0.0
        prev_time = 0.0
        prev_occupancy = 0.0
        for event in self.gc_log:
            dt = max(event.time - prev_time, 0.0)
            area += dt * (prev_occupancy + event.heap_before_mb) / 2.0
            prev_time = event.time
            prev_occupancy = event.heap_after_mb
        tail = max(end_time - prev_time, 0.0)
        area += tail * prev_occupancy
        return area / end_time

    def to_timeline(self, end_time: float) -> Timeline:
        """Freeze the observations into a :class:`Timeline`."""
        return Timeline(
            pauses=list(self.pauses),
            stalls=list(self.stalls),
            spans=list(self.spans),
            end_time=end_time,
        )


#: The full tier under its tiered name; :class:`Telemetry` stays the
#: public spelling so existing call sites and pickles keep working.
FullTelemetry = Telemetry


class AggregateTelemetry:
    """Aggregate-fidelity telemetry: scalar accumulators, no events.

    The end-of-run-counter tier: everything a scalar-only consumer (LBO
    cost tables, the minimum-heap search, suite sweeps) reads survives;
    everything else (per-pause lists, timelines, GC logs) is never
    materialized.  Every accumulator mirrors the exact addition order of
    :class:`Telemetry`'s list reductions, so the headline scalars are
    bit-identical across tiers.
    """

    fidelity = FIDELITY_AGGREGATE
    wants_events = False

    __slots__ = (
        "pause_cpu_s",
        "concurrent_cpu_s",
        "stw_wall_s",
        "stall_wall_s",
        "gc_count",
        "_footprint_area",
        "_footprint_prev_time",
        "_footprint_prev_occ",
    )

    def __init__(self) -> None:
        self.pause_cpu_s = 0.0
        self.concurrent_cpu_s = 0.0
        self.stw_wall_s = 0.0
        self.stall_wall_s = 0.0
        self.gc_count = 0
        # Running footprint integral: the same piecewise-trapezoid sum
        # Telemetry.average_footprint_mb performs over gc_log, folded in
        # one collection at a time.
        self._footprint_area = 0.0
        self._footprint_prev_time = 0.0
        self._footprint_prev_occ = 0.0

    def record_pause(self, start: float, duration: float, kind: str, workers: float) -> None:
        """Accumulate a stop-the-world pause and its CPU cost."""
        self.pause_cpu_s += duration * workers
        self.stw_wall_s += duration

    def record_stall(self, start: float, duration: float) -> None:
        """Accumulate an allocation stall."""
        self.stall_wall_s += duration

    def record_concurrent(
        self, start: float, end: float, gc_threads: float, dilation: float
    ) -> None:
        """Accumulate a concurrent span's CPU cost."""
        self.concurrent_cpu_s += (end - start) * gc_threads

    def record_collection(
        self,
        time: float,
        kind: str,
        pause_s: float,
        reclaimed_mb: float,
        heap_before_mb: float,
        heap_after_mb: float,
    ) -> None:
        """Count a collection and fold it into the footprint integral.

        The simulator's ``_execute_cycle`` inlines this fold on its hot
        path — keep the two in lockstep (the tier-equivalence tests pin
        the result).
        """
        self.gc_count += 1
        dt = time - self._footprint_prev_time
        if dt < 0.0:
            dt = 0.0
        self._footprint_area += dt * (self._footprint_prev_occ + heap_before_mb) / 2.0
        self._footprint_prev_time = time
        self._footprint_prev_occ = heap_after_mb

    def record_background_cpu(self, cpu_s: float) -> None:
        """Account always-on collector service-thread CPU."""
        if cpu_s < 0:
            raise ValueError("background CPU cannot be negative")
        self.concurrent_cpu_s += cpu_s

    @property
    def gc_cpu_s(self) -> float:
        """Total CPU attributable to the collector (pauses + concurrent)."""
        return self.pause_cpu_s + self.concurrent_cpu_s

    def average_footprint_mb(self, end_time: float) -> float:
        """Time-averaged heap occupancy from the running integral."""
        if end_time <= 0:
            raise ValueError("end time must be positive")
        if not self.gc_count:
            return 0.0
        tail = max(end_time - self._footprint_prev_time, 0.0)
        return (self._footprint_area + tail * self._footprint_prev_occ) / end_time


def make_telemetry(fidelity: Optional[str]) -> "TelemetrySink":
    """Build the telemetry sink for a fidelity tier (``None`` = full)."""
    if resolve_fidelity(fidelity) == FIDELITY_AGGREGATE:
        return AggregateTelemetry()
    return Telemetry()
