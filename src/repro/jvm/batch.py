"""Vectorized batch simulation: a whole heap-factor row in one pass.

Cells in a sweep share everything except heap size (and, across rows,
the workload spec): same collector model, same tuning, same machine.  A
real harness must pay one JVM process per cell; the simulator does not —
it can lay the cells out struct-of-arrays (numpy arrays over cells for
free space, trigger thresholds, pause schedules, and footprint
accumulators) and advance them all in lockstep.  That is this module:
:func:`simulate_batch` takes a :class:`BatchSpec` (one collector, many
cells) and returns a :class:`BatchResult` with one :class:`CellOutcome`
per cell, each carrying exactly what :func:`~repro.jvm.simulator.simulate_run`
would have produced for that cell (including its
:class:`~repro.jvm.heap.OutOfMemoryError` message, verbatim).

Two mechanisms provide the speedup:

1. **Lockstep SoA execution** — each simulator loop step (mutate to the
   trigger, run one GC cycle) executes for every live cell at once, so
   the per-step interpreter cost is paid once per *row* instead of once
   per cell.
2. **Periodic-orbit jumping** — within one iteration the dynamics are
   deterministic (run noise is drawn once, up front), and every
   collector model converges to an exactly repeating cycle pattern: the
   concurrent collectors reach a floating-garbage fixed point, and the
   stop-the-world collectors repeat bit-exact epochs between full GCs
   (a full GC resets ``live`` to exactly the live footprint).  The
   kernel records recent states in a ring; when a state recurs with
   period ``p`` it advances all accumulators by whole periods
   analytically instead of stepping through them.

Equivalence contract
--------------------
The scalar path (:func:`simulate_run`) remains the oracle.  Every
floating-point expression in this module mirrors the scalar code
op-for-op, and all state variables are bit-identical after an orbit
jump (the orbit recurrence is exact).  Two sources of inexactness
remain, both documented and bounded:

- ``needed_speedup ** (1/e)`` in the adaptive concurrent-worker sizing
  uses numpy's vectorized ``power``, which can differ from Python's
  scalar ``**`` by 1 ulp (SIMD pow); and
- accumulators advanced by an orbit jump gain ``m * delta`` in one step
  instead of ``m`` successive additions, changing rounding at the
  ~1e-12 relative level.

Hence headline scalars agree with the scalar path within
:data:`BATCH_TOLERANCE`: ``|a - b| <= BATCH_TOLERANCE * max(1, |a|, |b|)``,
with ``gc_count`` exactly equal.  ``bench_sim_kernel.py`` gates the
batch kernel on this check across all five collectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.rng import generator_for
from repro.jvm.collectors import COLLECTORS, resolve_collector
from repro.jvm.collectors.g1 import G1Collector
from repro.jvm.collectors.genzgc import GenZgcCollector
from repro.jvm.collectors.parallel import ParallelCollector
from repro.jvm.collectors.serial import SerialCollector
from repro.jvm.collectors.shenandoah import ShenandoahCollector
from repro.jvm.collectors.zgc import ZgcCollector
from repro.jvm.cpu import DEFAULT_MACHINE, Machine
from repro.jvm.environment import BASELINE_ENVIRONMENT, EnvironmentProfile
from repro.jvm.heap import Heap, OutOfMemoryError
from repro.jvm.simulator import (
    MAX_CYCLES_PER_ITERATION,
    IterationResult,
    RunResult,
    simulate_run,
    warmup_factor,
)
from repro.jvm.telemetry import FIDELITY_AGGREGATE

#: Documented batch/scalar tolerance: headline scalars satisfy
#: ``|batch - scalar| <= BATCH_TOLERANCE * max(1, |batch|, |scalar|)``
#: (``gc_count`` is exactly equal).  See the module docstring for the two
#: rounding sources this bounds.
BATCH_TOLERANCE = 1e-9

#: Ring capacity for periodic-orbit detection (max detectable period).
_RING = 2048
#: Steps between orbit-detection sweeps.
_CHECK_EVERY = 16


def batch_scalars_close(a: float, b: float, tolerance: float = BATCH_TOLERANCE) -> bool:
    """The documented batch/scalar comparison, in one place."""
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


@dataclass(frozen=True)
class BatchCell:
    """One sweep point inside a batch: a workload at a heap size.

    ``invocation`` seeds the run-to-run noise stream exactly as
    :func:`simulate_run` does, so batch cell ``(spec, heap, k)`` replays
    scalar invocation ``k`` bit-for-bit (within :data:`BATCH_TOLERANCE`).
    """

    spec: object  # WorkloadSpec; duck-typed to avoid an import cycle
    heap_mb: float
    invocation: int = 0

    def __post_init__(self) -> None:
        if self.heap_mb <= 0:
            raise ValueError("batch cell heap size must be positive")
        if self.invocation < 0:
            raise ValueError("batch cell invocation must be non-negative")


@dataclass(frozen=True)
class BatchSpec:
    """A row of cells sharing one collector and one run configuration.

    The fields mirror :func:`simulate_run`'s keyword arguments; a batch
    is semantically ``[simulate_run(cell.spec, collector, cell.heap_mb,
    ...) for cell in cells]`` evaluated in one vectorized pass at the
    aggregate fidelity tier.
    """

    collector: str
    cells: Tuple[BatchCell, ...]
    iterations: Optional[int] = None
    machine: Machine = DEFAULT_MACHINE
    tuning: Optional[object] = None  # GcTuning
    duration_scale: float = 1.0
    environment: EnvironmentProfile = BASELINE_ENVIRONMENT

    def __post_init__(self) -> None:
        resolve_collector(self.collector)
        if self.iterations is not None and self.iterations < 1:
            raise ValueError("need at least one iteration")


@dataclass(frozen=True)
class CellOutcome:
    """What one cell produced: a run, or the out-of-memory message.

    ``oom`` carries the exact :class:`OutOfMemoryError` message the
    scalar path would have raised for this cell.
    """

    run: Optional[RunResult]
    oom: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.oom is None


@dataclass(frozen=True)
class BatchResult:
    """Per-cell outcomes, in the order the cells were submitted."""

    outcomes: Tuple[CellOutcome, ...]

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> CellOutcome:
        return self.outcomes[index]


def _scalar_outcome(batch: BatchSpec, cell: BatchCell) -> CellOutcome:
    """Fallback: run one cell through the scalar oracle."""
    try:
        run = simulate_run(
            cell.spec,
            batch.collector,
            cell.heap_mb,
            iterations=batch.iterations,
            invocation=cell.invocation,
            machine=batch.machine,
            tuning=batch.tuning,
            duration_scale=batch.duration_scale,
            environment=batch.environment,
            fidelity=FIDELITY_AGGREGATE,
        )
    except OutOfMemoryError as exc:
        return CellOutcome(run=None, oom=str(exc))
    return CellOutcome(run=run)


def simulate_batch(spec: BatchSpec) -> BatchResult:
    """Simulate every cell of ``spec`` in one vectorized pass.

    The public batch entry point.  Cells the kernel cannot vectorize —
    an unregistered collector subclass, or a non-allocating workload
    (``alloc_rate_mb_s <= 0``, whose scalar loop takes a different
    branch) — fall back to the scalar path individually, so the result
    is always complete and always ordered like ``spec.cells``.
    """
    if not spec.cells:
        return BatchResult(outcomes=())
    cls = COLLECTORS[resolve_collector(spec.collector)]
    kernel_cls = _KERNELS.get(cls)
    outcomes: List[Optional[CellOutcome]] = [None] * len(spec.cells)
    vector_indices: List[int] = []
    for i, cell in enumerate(spec.cells):
        if kernel_cls is None or cell.spec.alloc_rate_mb_s <= 0:
            outcomes[i] = _scalar_outcome(spec, cell)
        else:
            vector_indices.append(i)
    if vector_indices:
        sim = _BatchSim(spec, [spec.cells[i] for i in vector_indices], cls, kernel_cls)
        for i, outcome in zip(vector_indices, sim.run()):
            outcomes[i] = outcome
    return BatchResult(outcomes=tuple(outcomes))


def _acc(dst: np.ndarray, amount: np.ndarray, mask: np.ndarray) -> None:
    """``dst[mask] += amount[mask]`` without fancy-indexing copies."""
    np.add(dst, amount, out=dst, where=mask)


def _set(dst: np.ndarray, value, mask: np.ndarray) -> None:
    """``dst[mask] = value[mask]`` (broadcasting scalars)."""
    np.copyto(dst, value, where=mask)


class _BatchSim:
    """Struct-of-arrays lockstep simulation of one batch.

    All per-cell state lives in one ``(K, n)`` float64 matrix ``B``:
    rows ``[0, s0)`` are the orbit *signature* (heap state plus kernel
    state), rows ``[s0, K)`` are monotone *accumulators*.  The named
    attributes (``live``, ``wall``, ...) are row views into ``B``, so
    the ring write is a single array copy and an orbit jump advances
    every accumulator of a lane with one vectorized expression.

    Lanes deactivate as their run completes or OOMs; the loop ends when
    no lane is active.  All float expressions mirror ``_IterationSim``
    op-for-op — see the module docstring for the equivalence contract.
    """

    def __init__(self, batch: BatchSpec, cells: List[BatchCell], cls, kernel_cls):
        self.batch = batch
        self.cells = cells
        self.n = n = len(cells)
        self.machine = batch.machine
        self.collector_label = batch.collector

        # Real scalar collaborators, one per cell: the collector instance
        # supplies the exact per-workload constants (mutator tax, live
        # footprint base, cached STW speedup) and the Heap supplies the
        # exact setup-OOM message, so neither is re-derived here.
        self.rngs = [
            generator_for(c.spec.name, batch.collector, f"{c.heap_mb:.3f}", c.invocation)
            for c in cells
        ]
        tuning = batch.tuning
        if tuning is None:
            from repro.jvm.collectors.base import GcTuning

            tuning = GcTuning()
        self.tuning = tuning
        self.collectors = [
            cls(c.spec, batch.machine, tuning, rng) for c, rng in zip(cells, self.rngs)
        ]
        self.heaps = [
            Heap(capacity_mb=c.heap_mb, reserve_fraction=cls.RESERVE_FRACTION)
            for c in cells
        ]

        f64 = np.float64
        self.capacity = np.array([c.heap_mb for c in cells], dtype=f64)
        self.usable = np.array([h.usable_mb for h in self.heaps], dtype=f64)
        self.tax = np.array([co.mutator_tax for co in self.collectors], dtype=f64)
        self.live_base = np.array([co._live_base_mb for co in self.collectors], dtype=f64)
        self.sr = np.array([c.spec.survival_rate for c in cells], dtype=f64)
        self.pf = np.array([c.spec.promotion_fraction for c in cells], dtype=f64)
        self.cores = np.array([c.spec.cpu_cores for c in cells], dtype=f64)
        self.alloc_spec = np.array([c.spec.alloc_rate_mb_s for c in cells], dtype=f64)
        # Allocation accrues against untaxed progress (same float op as
        # _IterationSim.__init__: spec rate / collector tax).
        self.alloc_rate = np.array(
            [c.spec.alloc_rate_mb_s / co.mutator_tax for c, co in zip(cells, self.collectors)],
            dtype=f64,
        )
        self.env_factor = [
            batch.environment.execution_time_factor(c.spec.sensitivities) for c in cells
        ]
        self.n_iters = [
            batch.iterations if batch.iterations is not None else c.spec.default_iterations
            for c in cells
        ]
        self.max_iters = max(self.n_iters)

        # Batch-shared scalars (identical for every cell: one collector
        # class, one machine, one tuning).
        proto = self.collectors[0]
        self.stw_workers_f = proto._stw_workers_f
        self.stw_speedup = proto._stw_speedup
        self.pause_floor = tuning.pause_floor_s
        self.mark_rate = tuning.mark_rate_mb_s
        self.copy_rate = tuning.copy_rate_mb_s
        self.conc_rate = tuning.concurrent_rate_mb_s
        self.eff_e = tuning.efficiency_exponent
        self.hw = batch.machine.hardware_threads
        self.interference_per_thread = batch.machine.concurrent_interference
        # Python-pow speedup LUT for integer team sizes: parallel_speedup
        # truncates its argument to int, so a table reproduces it exactly
        # (np.power on arrays is the one op that can differ by 1 ulp).
        self.speedup_lut = np.array(
            [float(max(1, min(i, self.hw))) ** self.eff_e for i in range(self.hw + 1)],
            dtype=f64,
        )

        # --- the state matrix ------------------------------------------
        # Signature rows [0, s0): everything the next step's dynamics
        # depend on, minus monotone accumulators.  ``progress`` never
        # belongs: any step where the remaining-work bound binds finishes
        # the iteration, so surviving lanes took progress-independent
        # steps.  ``prev_occ`` (plus the wall/prev_time *lag*, checked
        # from the accumulator rows at match time) is carried so
        # footprint-fold increments are provably periodic at a match.
        # Accumulator rows [s0, K): advanced by orbit jumps.  Kernel
        # state (G1's mixed countdown, GenZGC's young-cycle counter)
        # occupies the ``*_EXTRAS`` rows as float64 — the counts are
        # small integers, exact in a double.
        kse = kernel_cls.N_SIG_EXTRAS
        kae = kernel_cls.N_ACC_EXTRAS
        self.s0 = s0 = 4 + kse
        self.K = K = s0 + 9 + kae
        B = self.B = np.zeros((K, n), dtype=f64)
        self.live = B[0]
        self.young = B[1]
        self.unproductive = B[2]
        self.prev_occ = B[3]
        self.sig_extra_rows = [B[4 + j] for j in range(kse)]
        self.progress = B[s0]
        self.wall = B[s0 + 1]
        self.stw_wall = B[s0 + 2]
        self.pause_cpu = B[s0 + 3]
        self.conc_cpu = B[s0 + 4]
        self.stall_wall = B[s0 + 5]
        self.area = B[s0 + 6]
        self.prev_time = B[s0 + 7]
        self.alloc_total = B[s0 + 8]
        self.acc_extra_rows = [B[s0 + 9 + j] for j in range(kae)]
        # Fused row pairs: the mutator advances progress and wall by the
        # same amount, and every pause advances wall and stw_wall by the
        # same amount — adjacency turns two adds into one.
        self.prog_wall = B[s0 : s0 + 2]
        self.wall_stw = B[s0 + 1 : s0 + 3]
        self._row_progress = s0
        self._row_wall = s0 + 1
        self._row_prev_time = s0 + 7
        self._iter_reset = [
            self.progress,
            self.wall,
            self.pause_cpu,
            self.stw_wall,
            self.conc_cpu,
            self.stall_wall,
            self.area,
            self.prev_time,
            self.prev_occ,
            self.unproductive,
        ]

        # Non-ring per-cell state (constant within an iteration, or
        # integer-exact counters handled specially by orbit jumps).
        zeros = lambda: np.zeros(n, dtype=f64)  # noqa: E731
        self.extra_live = zeros()
        self.live_fp = zeros()
        self.target = zeros()
        self.done_at = zeros()
        # cycles and gc_count increment together every surviving step;
        # one (2, n) matrix makes that a single add.
        self._counts = np.zeros((2, n), dtype=np.int64)
        self.cycles = self._counts[0]
        self.gc_count = self._counts[1]

        # Lane status.
        self.alive = np.ones(n, dtype=bool)
        self.oom: List[Optional[str]] = [None] * n
        self.results: List[List[IterationResult]] = [[] for _ in range(n)]

        # Setup: exactly simulate_run's preamble, per cell.
        self.setup_live = [0.0] * n
        for i, (co, heap) in enumerate(zip(self.collectors, self.heaps)):
            live = co.live_footprint_mb()
            self.setup_live[i] = live
            try:
                heap.require_fits(live + max(0.5, 0.04 * live))
            except OutOfMemoryError as exc:
                self.alive[i] = False
                self.oom[i] = str(exc)
                continue
            self.live[i] = live

        self.kernel = kernel_cls(self)

    # ------------------------------------------------------------------
    def run(self) -> List[CellOutcome]:
        with np.errstate(all="ignore"):
            for iteration in range(1, self.max_iters + 1):
                it_mask = self.alive & np.array(
                    [ni >= iteration for ni in self.n_iters], dtype=bool
                )
                if not it_mask.any():
                    continue
                self._begin_iteration(iteration, it_mask)
                self._lockstep(it_mask)
                self._end_iteration(iteration, it_mask)
        return self._outcomes()

    def _begin_iteration(self, iteration: int, it_mask: np.ndarray) -> None:
        batch = self.batch
        for i in np.flatnonzero(it_mask):
            cell = self.cells[i]
            spec = cell.spec
            # Same op order as _IterationSim.__init__, in Python floats.
            speed = warmup_factor(iteration, spec) * self.env_factor[i]
            intrinsic = spec.execution_time_s * batch.duration_scale * speed
            noise = float(np.exp(self.rngs[i].normal(0.0, spec.run_noise)))
            self.target[i] = intrinsic * self.collectors[i].mutator_tax * noise
        self.done_at[:] = self.target - 1e-12
        for arr in self._iter_reset:
            arr[it_mask] = 0.0
        self._counts[:, it_mask] = 0
        self._cycles_hi = 0
        self._unpr_any = False
        self.alloc_at_start = self.alloc_total.copy()
        # Live footprint is constant within an iteration (extra_live only
        # changes at iteration boundaries via leakage).
        self.live_fp[:] = self.live_base + self.extra_live
        self.kernel.begin_iteration(it_mask)
        self._ring_reset()

    # -- lockstep loop -------------------------------------------------
    def _lockstep(self, it_mask: np.ndarray) -> None:
        """One iteration for every lane in ``it_mask``, in lockstep.

        Mirrors ``_IterationSim.run``: advance the mutator to the
        trigger, run one GC cycle, check the thrash and no-progress
        exits.  Updates that would be masked no-ops are applied as plain
        ``+= 0.0`` adds instead (bit-identical for the non-negative
        accumulators involved, and much cheaper than ``where=`` loops).
        """
        act = it_mask.copy()
        if not act.any():
            return
        usable = self.usable
        alloc_rate = self.alloc_rate
        kernel = self.kernel
        needs_yas = kernel.NEEDS_YOUNG_AT_START
        advances = kernel.ADVANCES_PROGRESS
        # Occupancy only changes inside the loop body, so the raw free
        # space carries across the loop boundary (the cycle's post-GC
        # reading doubles as the next step's pre-mutator reading).
        free_raw = usable - (self.live + self.young)
        step = 0
        while True:
            free = np.maximum(free_raw, 0.0)

            if step % _CHECK_EVERY == 0:
                self._orbit_check(act, step)
            self._ring_write(act, step)
            step += 1

            trigger = kernel.trigger_free(free)
            budget = free - trigger
            can = act & (budget > 0.0)
            ptt = budget / alloc_rate
            rem = np.maximum(self.target - self.progress, 0.0)
            adv = np.where(can, np.minimum(ptt, rem), 0.0)
            mb = adv * alloc_rate
            self.young += mb
            self.alloc_total += mb
            self.prog_wall += adv

            done = act & (self.progress >= self.done_at)
            act_c = act ^ done  # done is a subset of act
            if not act_c.any():
                return

            self._counts += act_c
            self._cycles_hi += 1
            if self._cycles_hi > MAX_CYCLES_PER_ITERATION:
                thrash = act_c & (self.cycles > MAX_CYCLES_PER_ITERATION)
                if thrash.any():
                    for i in np.flatnonzero(thrash):
                        self._fail(
                            int(i),
                            f"{self.cells[i].spec.name}: thrashing — more than "
                            f"{MAX_CYCLES_PER_ITERATION} GC cycles in one iteration",
                        )
                    act_c &= ~thrash

            started = self.wall.copy()
            heap_before = self.live + self.young
            young_at_start = self.young.copy() if needs_yas else None
            kernel.run_cycle(act_c, started, heap_before, young_at_start)

            # Footprint fold (AggregateTelemetry.record_collection inline).
            occ_after = self.live + self.young
            reclaimed = heap_before - occ_after
            dt = np.maximum(started - self.prev_time, 0.0)
            self.area += np.where(act_c, dt * (self.prev_occ + heap_before) / 2.0, 0.0)
            _set(self.prev_time, started, act_c)
            _set(self.prev_occ, occ_after, act_c)
            free_raw = usable - occ_after

            # The unproductive-cycle counter only moves when some lane is
            # nearly out of free space; skip the bookkeeping entirely
            # while every counter is provably zero.
            tight = free_raw < 0.5
            if self._unpr_any or tight.any():
                stuck = act_c & (reclaimed < 0.25) & tight
                _set(self.unproductive, np.where(stuck, self.unproductive + 1.0, 0.0), act_c)
                self._unpr_any = bool(stuck.any())
                if self._unpr_any:
                    failed = act_c & (self.unproductive >= 3.0)
                    if failed.any():
                        for i in np.flatnonzero(failed):
                            self._fail(
                                int(i),
                                f"{self.cells[i].spec.name}: heap of "
                                f"{self.capacity[i]:.0f} MB cannot make progress with "
                                f"{type(self.collectors[i]).NAME}",
                            )
                        act_c &= ~failed

            if advances:
                # A cycle's concurrent phase can finish the workload too.
                done_after = act_c & (self.progress >= self.done_at)
                act = act_c ^ done_after
                if not act.any():
                    return
            else:
                act = act_c

    def _fail(self, i: int, message: str) -> None:
        """Mark lane ``i`` out-of-memory: the whole run is discarded,
        exactly as the scalar path's raised exception discards it."""
        self.alive[i] = False
        self.oom[i] = message
        self.results[i] = []

    # -- periodic-orbit machinery ---------------------------------------
    def _ring_reset(self) -> None:
        if not hasattr(self, "_ring"):
            self._ring = np.zeros((_RING, self.K, self.n), dtype=np.float64)
            self._ring_step = np.zeros(_RING, dtype=np.int64)
            self._ring_valid = np.zeros((_RING, self.n), dtype=bool)
        else:
            self._ring_valid[:] = False

    def _ring_write(self, act: np.ndarray, step: int) -> None:
        pos = step % _RING
        self._ring[pos] = self.B  # one (K, n) copy: the whole state
        self._ring_step[pos] = step
        self._ring_valid[pos] = act

    def _orbit_check(self, act: np.ndarray, step: int) -> None:
        """Find lanes whose state recurred; jump them whole periods ahead.

        State variables are untouched (the match *is* the current state);
        each accumulator advances by ``m * (current - value one period
        ago)``.  ``m`` is the largest jump that keeps ``progress``
        strictly below the iteration target (checked with the exact jump
        arithmetic) and never crosses the thrash ceiling silently.
        """
        if step == 0 or not act.any():
            return
        # Vectorized prefilter on the live row, over only the slots ever
        # written; full signature equality (plus the wall/prev_time lag)
        # is checked per candidate lane.
        u = step if step < _RING else _RING
        cand = self._ring_valid[:u] & (self._ring[:u, 0, :] == self.B[0])
        lanes = np.flatnonzero(cand.any(axis=0) & act)
        if lanes.size == 0:
            return
        s0 = self.s0
        rw, rp, rg = self._row_wall, self._row_prev_time, self._row_progress
        for i in lanes:
            slots = np.flatnonzero(cand[:, i])
            ring_i = self._ring[slots, :, i]  # (k, K) gather, k small
            eq = (ring_i[:, :s0] == self.B[:s0, i]).all(axis=1)
            lag = float(self.B[rw, i]) - float(self.B[rp, i])
            eq &= (ring_i[:, rw] - ring_i[:, rp]) == lag
            good = np.flatnonzero(eq)
            if good.size == 0:
                continue
            # Oldest match gives the largest provable period.
            sel = slots[good]
            slot = int(sel[np.argmin(self._ring_step[sel])])
            p = step - int(self._ring_step[slot])
            if p <= 0:
                continue
            prog = float(self.B[rg, i])
            d_prog = prog - float(self._ring[slot, rg, i])
            if d_prog <= 0.0:
                # No progress per period: the scalar path thrash-OOMs.
                # Fast-forward the cycle counter so the same OOM fires on
                # the next cycle attempt, with the exact message.
                self.cycles[i] = MAX_CYCLES_PER_ITERATION
                self._ring_valid[:, i] = False
                continue
            done_at = float(self.done_at[i])
            m = int((done_at - prog) / d_prog)
            # Never jump past the thrash ceiling: if the orbit would hit
            # MAX_CYCLES first, stop short and let the loop find it.
            m = min(m, (MAX_CYCLES_PER_ITERATION - int(self.cycles[i])) // p)
            # Overshoot guard, in the exact float ops of the jump below:
            # land strictly below the target so the remaining (< 1
            # period) steps replay the scalar path unchanged.
            while m > 0 and prog + m * d_prog >= done_at:
                m -= 1
            self._ring_valid[:, i] = False
            if m <= 0:
                continue
            col = self.B[s0:, i]
            col += m * (col - self._ring[slot, s0:, i])
            # Every surviving lockstep step runs exactly one GC cycle.
            self.gc_count[i] += m * p
            self.cycles[i] += m * p
            self._cycles_hi = max(self._cycles_hi, int(self.cycles[i]))

    # -- iteration end ---------------------------------------------------
    def _end_iteration(self, iteration: int, it_mask: np.ndarray) -> None:
        finished = it_mask & self.alive
        # record_background_cpu: always-on collector service threads.
        background = self.kernel.background_cpu()
        if background is not None:
            _acc(self.conc_cpu, background, finished)
        for i in np.flatnonzero(finished):
            spec = self.cells[i].spec
            wall = float(self.wall[i])
            if wall > 0 and self.gc_count[i]:
                tail = wall - float(self.prev_time[i])
                if tail < 0.0:
                    tail = 0.0
                avg_fp = (float(self.area[i]) + tail * float(self.prev_occ[i])) / wall
            else:
                avg_fp = 0.0
            self.results[i].append(
                IterationResult(
                    wall_s=wall,
                    mutator_cpu_s=float(self.progress[i]) * spec.cpu_cores,
                    gc_pause_cpu_s=float(self.pause_cpu[i]),
                    gc_concurrent_cpu_s=float(self.conc_cpu[i]),
                    stw_wall_s=float(self.stw_wall[i]),
                    stall_wall_s=float(self.stall_wall[i]),
                    gc_count=int(self.gc_count[i]),
                    allocated_mb=float(self.alloc_total[i]) - float(self.alloc_at_start[i]),
                    live_end_mb=float(self.live[i]),
                    avg_footprint_mb=avg_fp,
                    fidelity=FIDELITY_AGGREGATE,
                    timeline=None,
                    telemetry=None,
                )
            )
            # Leakage joins the live footprint between iterations, exactly
            # as simulate_run applies it (leak is a fraction of the live
            # set measured at setup, constant per iteration).
            if spec.leak_rate > 0:
                leak = self.setup_live[i] * spec.leak_rate
                self.extra_live[i] += leak
                self.live[i] = min(float(self.live[i]) + leak, float(self.usable[i]))

    def _outcomes(self) -> List[CellOutcome]:
        out: List[CellOutcome] = []
        for i in range(self.n):
            if self.oom[i] is not None:
                out.append(CellOutcome(run=None, oom=self.oom[i]))
            else:
                out.append(CellOutcome(run=RunResult(iterations=self.results[i])))
        return out


class _Kernel:
    """Per-collector-family vectorized cycle model.

    A kernel answers the same two questions a :class:`Collector` does —
    where is the trigger, what does a cycle look like — but over arrays.
    Every expression mirrors the scalar collector op-for-op.  Kernel
    state lives in ``B`` rows declared via ``N_SIG_EXTRAS`` /
    ``N_ACC_EXTRAS`` so the ring and orbit jumps see it for free.
    """

    #: Rows of kernel state that belong in the orbit signature.
    N_SIG_EXTRAS = 0
    #: Rows of kernel accumulators advanced by orbit jumps.
    N_ACC_EXTRAS = 0
    #: False for pause-only kernels: the lockstep loop can then skip the
    #: pre-cycle young snapshot and the post-cycle completion check.
    NEEDS_YOUNG_AT_START = True
    ADVANCES_PROGRESS = True

    def __init__(self, sim: _BatchSim):
        self.s = sim

    def begin_iteration(self, it_mask: np.ndarray) -> None:
        """Hook at iteration start: collector state persists across
        iterations, but iteration-constant pause terms are hoisted here."""

    def background_cpu(self) -> Optional[np.ndarray]:
        """Per-cell always-on service-thread CPU for the ending iteration
        (``Collector.background_concurrent_cpu_s``); None when zero."""
        return None

    def trigger_free(self, free: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def run_cycle(
        self,
        m: np.ndarray,
        started: np.ndarray,
        heap_before: np.ndarray,
        young_at_start: Optional[np.ndarray],
    ) -> None:
        raise NotImplementedError

    # -- shared pieces --------------------------------------------------
    def _pause(self, duration: np.ndarray, mask: np.ndarray) -> None:
        """One STW segment: same per-segment accumulation order as the
        scalar aggregate tier (pause CPU, STW wall, wall)."""
        s = self.s
        d = np.where(mask, duration, 0.0)
        s.pause_cpu += d * s.stw_workers_f
        s.wall_stw += d  # wall and stw_wall, fused

    def _young_effect(self, mask: np.ndarray, survivors: Optional[np.ndarray] = None) -> None:
        """Young-style heap accounting (no old reclaim)."""
        s = self.s
        if survivors is None:
            survivors = s.young * s.sr
        promoted = survivors * s.pf
        _set(s.young, survivors - promoted, mask)
        _set(s.live, s.live + promoted, mask)

    def _full_effect(self, mask: np.ndarray, young_at_start: np.ndarray) -> None:
        """Full-style heap accounting; allocation during a concurrent
        cycle survives as floating garbage."""
        s = self.s
        before = s.live + s.young
        floating = np.maximum(s.young - young_at_start, 0.0)
        new_live = np.minimum(s.live_fp, before)
        new_live = np.minimum(new_live, s.usable - floating)
        _set(s.live, new_live, mask)
        _set(s.young, floating, mask)

    def _full_effect_stw(self, mask: np.ndarray, heap_before: np.ndarray) -> None:
        """Full-style accounting for pause-only cycles: no concurrent
        phase means floating garbage is exactly 0.0 and ``heap_before``
        is still the masked lanes' current occupancy."""
        s = self.s
        new_live = np.minimum(np.minimum(s.live_fp, heap_before), s.usable)
        _set(s.live, new_live, mask)
        _set(s.young, 0.0, mask)

    def _eden_trigger(self, young_fraction: float) -> np.ndarray:
        """Serial/G1 trigger: free space outside the sized eden.

        ``maximum(yf * headroom, 0.5)`` folds the scalar path's two
        branches (zero when headroom <= 0, floor at 0.5 MB) into one op
        with the same result for every input.
        """
        s = self.s
        headroom = s.usable - s.live
        eden = np.maximum(young_fraction * headroom, 0.5)
        return np.maximum(headroom - eden, 0.0)


class _StwKernel(_Kernel):
    """Serial and Parallel: young scavenges, full mark-compact fallback.

    The two differ only in worker count and reserve — both already baked
    into the batch-shared scalars harvested at setup.
    """

    NEEDS_YOUNG_AT_START = False
    ADVANCES_PROGRESS = False

    def __init__(self, sim: _BatchSim):
        super().__init__(sim)
        cls = type(sim.collectors[0])
        self.young_fraction = cls.YOUNG_FRACTION
        self.full_line = cls.FULL_GC_THRESHOLD * sim.usable
        self.copy_denom = sim.copy_rate * sim.stw_speedup
        self.mark_denom = sim.mark_rate * sim.stw_speedup

    def begin_iteration(self, it_mask):
        # live_fp is constant within an iteration, so the compaction
        # pause is too.
        self.d_compact = self.s.pause_floor + self.s.live_fp / self.copy_denom

    def trigger_free(self, free):
        return self._eden_trigger(self.young_fraction)

    def run_cycle(self, m, started, heap_before, young_at_start):
        s = self.s
        full = m & (s.live >= self.full_line)
        survivors = s.young * s.sr
        d_young = s.pause_floor + (survivors + 0.02 * s.live) / self.copy_denom
        if full.any():
            d_mark = s.pause_floor + heap_before / self.mark_denom
            self._pause(np.where(full, d_mark, d_young), m)
            self._pause(self.d_compact, full)
            self._full_effect_stw(full, heap_before)
            self._young_effect(m ^ full, survivors)
        else:
            self._pause(d_young, m)
            self._young_effect(m, survivors)


class _G1Kernel(_Kernel):
    """G1: young / concurrent-mark / mixed / full, with the mark→mixed
    state machine vectorized as a countdown per lane.

    ``_marking`` has no vector analogue: the scalar flag is set when a
    concurrent-mark plan is built and cleared by ``notify_cycle_complete``
    for that same cycle, so it is always False when ``plan_cycle`` reads
    it — only ``_mixed_remaining`` and ``_mark_cpu_s`` are real state.
    """

    N_SIG_EXTRAS = 1  # the mixed-pause countdown
    N_ACC_EXTRAS = 1  # cumulative concurrent-mark CPU
    NEEDS_YOUNG_AT_START = False
    ADVANCES_PROGRESS = False

    def __init__(self, sim: _BatchSim):
        super().__init__(sim)
        self.young_fraction = G1Collector.YOUNG_FRACTION
        self.full_line = G1Collector.FULL_GC_THRESHOLD * sim.usable
        self.ihop_line = G1Collector.IHOP * sim.usable
        self.rset = G1Collector.RSET_PAUSE_S
        self.mixed_count = G1Collector.MIXED_PAUSE_COUNT
        self.copy_denom = sim.copy_rate * sim.stw_speedup
        self.mark_denom = sim.mark_rate * sim.stw_speedup
        self.mixed_rem = sim.sig_extra_rows[0]
        self.mark_cpu = sim.acc_extra_rows[0]

    def begin_iteration(self, it_mask):
        self.d_compact = self.s.pause_floor + self.s.live_fp / self.copy_denom

    def background_cpu(self) -> Optional[np.ndarray]:
        # Concurrent refinement proportional to cumulative allocation,
        # plus all marking performed so far this run.
        s = self.s
        return 0.05 * s.alloc_total / s.conc_rate + self.mark_cpu

    def trigger_free(self, free):
        return self._eden_trigger(self.young_fraction)

    def run_cycle(self, m, started, heap_before, young_at_start):
        s = self.s
        full = m & (s.live >= self.full_line)
        nonfull = m ^ full
        mixed = nonfull & (self.mixed_rem > 0.0)
        mark = (nonfull ^ mixed) & (s.live >= self.ihop_line)
        full_any = bool(full.any())
        mixed_any = bool(mixed.any())
        mark_any = bool(mark.any())

        if mark_any:
            self.mark_cpu += np.where(mark, 1.2 * s.live / s.conc_rate, 0.0)

        survivors = s.young * s.sr
        work = survivors + 0.02 * s.live
        if mixed_any or mark_any:
            work = work * np.where(mixed, 1.3, np.where(mark, 1.1, 1.0))
        d_young = s.pause_floor + work / self.copy_denom + self.rset

        if full_any:
            d_mark_full = s.pause_floor + heap_before / self.mark_denom
            self._pause(np.where(full, d_mark_full, d_young), m)
        else:
            self._pause(d_young, m)
        if mark_any:
            d_remark = s.pause_floor + (0.08 * s.live) / self.mark_denom
            if full_any:
                self._pause(np.where(full, self.d_compact, d_remark), full | mark)
            else:
                self._pause(d_remark, mark)
        elif full_any:
            self._pause(self.d_compact, full)

        # Mixed reclaim is planned against pre-cycle occupancy.
        if mixed_any:
            reclaim = np.maximum(s.live - s.live_fp, 0.0) / self.mixed_count
        self._young_effect(nonfull, survivors)
        if mixed_any:
            apply_reclaim = mixed & (reclaim > 0.0)
            reduced = s.live - reclaim
            _set(s.live, np.where(s.live_fp > reduced, s.live_fp, reduced), apply_reclaim)
        if full_any:
            self._full_effect_stw(full, heap_before)

        # notify_cycle_complete: the mark→mixed countdown.
        if mark_any:
            _set(self.mixed_rem, float(self.mixed_count), mark)
        if mixed_any:
            np.subtract(self.mixed_rem, 1.0, out=self.mixed_rem, where=mixed)
        if full_any:
            _set(self.mixed_rem, 0.0, full)


class _ConcurrentKernel(_Kernel):
    """Shared machinery for the fully concurrent collectors: adaptive
    team sizing, trigger projection, and the concurrent phase with
    dilation, pacing, and allocation stalls."""

    def __init__(self, sim: _BatchSim):
        super().__init__(sim)
        cls = type(sim.collectors[0])
        proto = sim.collectors[0]
        self.ysf = cls.YOUNG_SCAN_FACTOR
        self.cwf = cls.CYCLE_WORK_FACTOR
        self.ts = cls.TRIGGER_SAFETY
        self.pacing_target = cls.PACING_TARGET
        self.base_workers = proto.default_concurrent_workers()
        self.max_workers = proto.max_concurrent_workers()
        self.inv_e = 1.0 / sim.eff_e
        self.cores_over_quarter = sim.cores / 0.25
        # When the clamp pins the team (Shenandoah on the default
        # machine) the whole sizing pipeline is constant: precompute it
        # and skip the power entirely — bit-exact by construction.
        self.pinned = self.base_workers >= self.max_workers
        if self.pinned:
            self.pinned_workers = np.full(sim.n, self.base_workers, dtype=np.float64)
            iw = min(max(int(self.base_workers), 1), sim.hw)
            self.pinned_denom = sim.conc_rate * float(sim.speedup_lut[iw])

    # -- per-collector hooks ---------------------------------------------
    def _cycle_work(self) -> np.ndarray:
        s = self.s
        return self.cwf * (s.live + self.ysf * s.young)

    def _pace(self, free: np.ndarray, duration: np.ndarray) -> Optional[np.ndarray]:
        return None  # ZGC: no pacer, mutators stall outright

    def _pre_pauses(self, m: np.ndarray) -> None:
        raise NotImplementedError

    def _post_pauses(self, m: np.ndarray) -> None:
        raise NotImplementedError

    # -- shared sizing ----------------------------------------------------
    def _workers(self, free: np.ndarray, work: np.ndarray) -> np.ndarray:
        s = self.s
        if self.pinned:
            return self.pinned_workers
        budget = self.pacing_target * free / s.alloc_spec
        ns = work / (s.conc_rate * budget)
        # The one vectorized op that can differ from the scalar path by
        # 1 ulp (SIMD pow) — see BATCH_TOLERANCE.
        needed = np.where(ns <= 1.0, 1.0, np.power(ns, self.inv_e))
        sized = np.minimum(np.maximum(self.base_workers, needed), self.max_workers)
        return np.where(free > 0.0, sized, self.base_workers)

    def _duration(self, work: np.ndarray, workers: np.ndarray) -> np.ndarray:
        s = self.s
        if self.pinned:
            return work / self.pinned_denom
        iw = workers.astype(np.int64)
        np.clip(iw, 1, s.hw, out=iw)
        return work / (s.conc_rate * s.speedup_lut[iw])

    def begin_iteration(self, it_mask):
        # The trigger's headroom window only moves with live_fp.
        s = self.s
        headroom = np.maximum(s.usable - s.live_fp, 0.0)
        self.h_lo = 0.10 * headroom
        self.h_hi = 0.90 * headroom

    def trigger_free(self, free):
        s = self.s
        work = self._cycle_work()
        duration = self._duration(work, self._workers(free, work))
        expected = s.alloc_spec * duration
        return np.minimum(np.maximum(self.ts * expected, self.h_lo), self.h_hi)

    def _concurrent(self, m, free, work, workers, duration) -> None:
        s = self.s
        mc = m & (duration > 0.0)
        interference = 1.0 + s.interference_per_thread * workers / s.hw
        available = s.hw - workers
        contention = np.where(
            available <= 0.0,
            np.maximum(self.cores_over_quarter, interference),
            np.where(
                s.cores <= available,
                interference,
                np.maximum(s.cores / available, interference),
            ),
        )
        pr = 1.0 / contention
        pace = self._pace(free, duration)
        if pace is not None:
            pr = np.minimum(pr, pace / s.alloc_rate)
        start = s.wall.copy()
        max_space = free / s.alloc_rate
        rem = np.maximum(s.target - s.progress, 0.0)
        prog = np.minimum(np.minimum(pr * duration, max_space), rem)
        run_wall = np.where(pr > 0.0, prog / pr, 0.0)
        finished = prog >= rem - 1e-12
        span_end = start + np.where(finished, run_wall, duration)
        s.conc_cpu += np.where(mc, (span_end - start) * workers, 0.0)
        pm = np.where(mc, prog, 0.0)
        mb = pm * s.alloc_rate
        s.young += mb
        s.alloc_total += mb
        s.progress += pm
        stall = np.where(
            mc & ~finished & (run_wall < duration), duration - run_wall, 0.0
        )
        s.stall_wall += stall
        _set(s.wall, span_end, mc)

    def run_cycle(self, m, started, heap_before, young_at_start):
        s = self.s
        free = np.maximum(s.usable - (s.live + s.young), 0.0)
        work = self._cycle_work()
        workers = self._workers(free, work)
        duration = self._duration(work, workers)
        self._pre_pauses(m)
        self._concurrent(m, free, work, workers, duration)
        self._post_pauses(m)
        self._full_effect(m, young_at_start)


class _ShenandoahKernel(_ConcurrentKernel):
    """Shenandoah: brief root-scan pauses and the allocation pacer."""

    def _pace(self, free, duration):
        return ShenandoahCollector.PACE_HEADROOM * free / duration

    def begin_iteration(self, it_mask):
        super().begin_iteration(it_mask)
        # Root-scan pauses track live_fp: constant within an iteration.
        s = self.s
        denom = s.mark_rate * s.stw_speedup
        self.d_pre = s.pause_floor + (0.010 * s.live_fp) / denom
        self.d_post = s.pause_floor + (0.015 * s.live_fp) / denom

    def _pre_pauses(self, m):
        self._pause(self.d_pre, m)

    def _post_pauses(self, m):
        self._pause(self.d_post, m)


class _ZgcKernel(_ConcurrentKernel):
    """ZGC: O(1) pauses (exactly the pause floor), allocation stalls."""

    def __init__(self, sim: _BatchSim):
        super().__init__(sim)
        # stw_pause_for(0.0, ...): pause_floor + 0.0 == pause_floor.
        self.tiny = np.full(
            sim.n, sim.pause_floor + 0.0 / (sim.mark_rate * sim.stw_speedup)
        )

    def _pre_pauses(self, m):
        self._pause(self.tiny, m)

    def _post_pauses(self, m):
        self._pause(self.tiny, m)  # mark-end
        self._pause(self.tiny, m)  # relocate-start


class _GenZgcKernel(_ZgcKernel):
    """Generational ZGC: mostly young cycles, a full cycle every
    ``YOUNG_CYCLES_PER_OLD``, tracked as a per-lane counter."""

    N_SIG_EXTRAS = 1  # young-cycles-since-old counter

    def __init__(self, sim: _BatchSim):
        super().__init__(sim)
        self.per_old = float(GenZgcCollector.YOUNG_CYCLES_PER_OLD)
        self.ycwf = GenZgcCollector.YOUNG_CYCLE_WORK_FACTOR
        self.yso = sim.sig_extra_rows[0]

    def _cycle_work(self) -> np.ndarray:
        s = self.s
        old_due = self.yso >= self.per_old
        survivors = s.young * s.sr
        young_work = self.ycwf * (survivors + 0.1 * s.young)
        return np.where(old_due, super()._cycle_work(), young_work)

    def run_cycle(self, m, started, heap_before, young_at_start):
        s = self.s
        old_due = self.yso >= self.per_old
        old = m & old_due
        youngm = m ^ old
        free = np.maximum(s.usable - (s.live + s.young), 0.0)
        work = self._cycle_work()
        workers = self._workers(free, work)
        duration = self._duration(work, workers)
        self._pause(self.tiny, m)  # mark-start / young-mark-start
        self._concurrent(m, free, work, workers, duration)
        self._pause(self.tiny, m)  # mark-end / young-relocate-start
        if old.any():
            self._pause(self.tiny, old)  # relocate-start (old cycles only)
            self._full_effect(old, young_at_start)
        self._young_effect(youngm)
        # notify_cycle_complete: advance or reset the young counter.
        self.yso += youngm
        _set(self.yso, 0.0, old)


#: Kernel dispatch is by exact collector class: an unregistered subclass
#: may override any hook, so it silently falls back to the scalar path.
_KERNELS: Dict[type, type] = {
    SerialCollector: _StwKernel,
    ParallelCollector: _StwKernel,
    G1Collector: _G1Kernel,
    ShenandoahCollector: _ShenandoahKernel,
    ZgcCollector: _ZgcKernel,
    GenZgcCollector: _GenZgcKernel,
}
