"""Heap model: capacity, occupancy, and the live set.

The heap is the arena the time–space tradeoff plays out in (Recommendations
H1/H2): the smaller the headroom between capacity and live set, the more
often the collector must run and the more CPU it burns.  The model tracks
occupancy in MB; object identity is not represented — demographics
(`repro.jvm.objects`) summarise what the collector would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OutOfMemoryError(RuntimeError):
    """Raised when a workload's live set cannot fit in the configured heap.

    Mirrors the JVM's ``java.lang.OutOfMemoryError``: benchmarks below their
    minimum heap size do not complete, which is exactly the behaviour the
    minimum-heap search (GMD/GMU statistics) probes for.
    """


@dataclass
class Heap:
    """A bump-allocated heap with a long-lived live set.

    ``capacity_mb`` plays the role of ``-Xmx``.  ``live_mb`` is the
    long-lived (old-generation) live set; ``young_mb`` is un-collected fresh
    allocation.  ``reserve_fraction`` models per-collector metadata and
    fragmentation overhead — space the application can never use.
    """

    capacity_mb: float
    live_mb: float = 0.0
    young_mb: float = 0.0
    reserve_fraction: float = 0.0

    allocated_total_mb: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0:
            raise ValueError("heap capacity must be positive")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ValueError("reserve fraction must be in [0, 1)")
        if self.live_mb < 0 or self.young_mb < 0:
            raise ValueError("heap occupancy cannot be negative")

    @property
    def usable_mb(self) -> float:
        """Capacity available to the application after collector reserve."""
        return self.capacity_mb * (1.0 - self.reserve_fraction)

    @property
    def occupied_mb(self) -> float:
        return self.live_mb + self.young_mb

    @property
    def free_mb(self) -> float:
        # Inlined usable_mb - occupied_mb (the simulator's hottest heap
        # read); the grouping must match those properties exactly.
        free = self.capacity_mb * (1.0 - self.reserve_fraction) - (
            self.live_mb + self.young_mb
        )
        return free if free > 0.0 else 0.0

    def allocate(self, mb: float) -> None:
        """Allocate ``mb`` of fresh objects into the young space.

        Raises :class:`OutOfMemoryError` if the allocation exceeds free
        space — the caller (the simulator loop) is responsible for
        scheduling collections before that happens.
        """
        if mb < 0:
            raise ValueError("cannot allocate a negative amount")
        if mb > self.free_mb + 1e-9:
            raise OutOfMemoryError(
                f"allocation of {mb:.1f} MB exceeds free space "
                f"{self.free_mb:.1f} MB (capacity {self.capacity_mb:.1f} MB)"
            )
        self.young_mb += mb
        self.allocated_total_mb += mb

    def collect_young(self, survival_rate: float, promotion_fraction: float) -> float:
        """Perform the accounting of a young collection.

        Surviving young bytes either stay young (aging) or are promoted to
        the live set.  Returns the MB reclaimed.
        """
        if not 0.0 <= survival_rate <= 1.0:
            raise ValueError("survival rate must be in [0, 1]")
        if not 0.0 <= promotion_fraction <= 1.0:
            raise ValueError("promotion fraction must be in [0, 1]")
        survivors = self.young_mb * survival_rate
        reclaimed = self.young_mb - survivors
        promoted = survivors * promotion_fraction
        self.young_mb = survivors - promoted
        self.live_mb += promoted
        return reclaimed

    def collect_full(self, live_target_mb: float) -> float:
        """Perform the accounting of a full collection.

        The heap is compacted down to ``live_target_mb``; everything else is
        reclaimed.  Returns the MB reclaimed.
        """
        if live_target_mb < 0:
            raise ValueError("live target cannot be negative")
        before = self.occupied_mb
        after = min(live_target_mb, before)
        self.live_mb = after
        self.young_mb = 0.0
        return before - after

    def require_fits(self, mb: float) -> None:
        """Raise :class:`OutOfMemoryError` unless ``mb`` fits in usable space."""
        if mb > self.usable_mb:
            raise OutOfMemoryError(
                f"live set of {mb:.1f} MB cannot fit usable heap of "
                f"{self.usable_mb:.1f} MB ({self.capacity_mb:.1f} MB capacity)"
            )
