"""Cell grades and collector scores: quality-aware result folding.

Two scoring primitives turn raw sweep results into decisions:

- :class:`CellGrade` attaches a *validity score* to every metered
  (workload, collector, heap multiple) point, graded from the coefficient
  of variation across invocations — the FlakeBench derived-metrics idea
  that a latency or overhead number without a dispersion check is not a
  result.  The planner uses grades to decide which points still need
  invocations (refine-until-CI), and ``chopin plan`` prints them so a
  POOR point is never silently averaged into a ranking.
- :class:`CollectorScore` folds a collector's multi-objective results —
  wall overhead, CPU overhead, space cost, run-to-run instability — into
  a single geometric-mean figure of merit with a per-component
  breakdown, the BRAD ``Score.single_value()`` pattern.  Lower is
  better for every component, so the gmean is a cost and collectors
  rank ascending.

Both are pure functions of simulated measurements: same sweep in, same
grades and ranking out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Grade ladder, best first.  Thresholds on the [0, 1] validity score.
GRADE_EXCELLENT = "EXCELLENT"
GRADE_GOOD = "GOOD"
GRADE_FAIR = "FAIR"
GRADE_POOR = "POOR"

GRADES: Tuple[str, ...] = (GRADE_EXCELLENT, GRADE_GOOD, GRADE_FAIR, GRADE_POOR)

#: CV levels above which a point's validity score is deducted: a cell
#: whose invocations disagree by more than 15 % (30 %) of the mean is a
#: noisy (very noisy) measurement whatever its mean says.
CV_HIGH = 0.15
CV_VERY_HIGH = 0.30


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Sample CV (std/mean, ddof=1); 0.0 when fewer than two samples."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        return 0.0
    mean = float(np.mean(arr))
    if mean == 0.0:
        return 0.0
    return abs(float(np.std(arr, ddof=1)) / mean)


@dataclass(frozen=True)
class CellGrade:
    """Validity grade for one measured sweep point.

    ``score`` is in [0, 1] (1.0: trustworthy steady-state measurement);
    ``grade`` is the ladder bucket; ``issues`` lists every deduction in
    the order applied, so a FAIR point explains itself.
    """

    benchmark: str
    collector: str
    heap_multiple: float
    cv: float
    samples: int
    score: float
    grade: str
    issues: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True for measurements a ranking may trust (GOOD or better)."""
        return self.grade in (GRADE_EXCELLENT, GRADE_GOOD)


def _grade_for(score: float) -> str:
    if score >= 0.9:
        return GRADE_EXCELLENT
    if score >= 0.7:
        return GRADE_GOOD
    if score >= 0.5:
        return GRADE_FAIR
    return GRADE_POOR


def grade_cell(
    benchmark: str,
    collector: str,
    heap_multiple: float,
    wall_samples: Sequence[float],
    oom: bool = False,
) -> CellGrade:
    """Grade one sweep point from its per-invocation wall times.

    An infeasible (OOM) point scores 0.0/POOR — it carries no timing at
    all.  Otherwise the score starts at 1.0 and loses points for a
    single-invocation measurement (no dispersion estimate) and for high
    CV across invocations, mirroring the FlakeBench deductions.
    """
    if oom:
        return CellGrade(
            benchmark=benchmark,
            collector=collector,
            heap_multiple=heap_multiple,
            cv=0.0,
            samples=len(wall_samples),
            score=0.0,
            grade=GRADE_POOR,
            issues=("infeasible: workload cannot run in this heap",),
        )
    if not wall_samples:
        raise ValueError("cannot grade a feasible point with no samples")
    cv = coefficient_of_variation(wall_samples)
    score = 1.0
    issues: List[str] = []
    if len(wall_samples) < 2:
        score -= 0.25
        issues.append("single invocation: no dispersion estimate")
    if cv > CV_VERY_HIGH:
        score -= 0.35
        issues.append(f"very high variance across invocations (cv={cv:.3f})")
    elif cv > CV_HIGH:
        score -= 0.15
        issues.append(f"high variance across invocations (cv={cv:.3f})")
    score = max(0.0, min(1.0, score))
    return CellGrade(
        benchmark=benchmark,
        collector=collector,
        heap_multiple=heap_multiple,
        cv=cv,
        samples=len(wall_samples),
        score=score,
        grade=_grade_for(score),
        issues=tuple(issues),
    )


#: The component order every :class:`CollectorScore` reports, so
#: breakdowns line up across collectors.
SCORE_COMPONENTS: Tuple[str, ...] = (
    "wall_overhead",
    "cpu_overhead",
    "space_cost",
    "instability",
)


@dataclass(frozen=True)
class CollectorScore:
    """One collector's multi-objective score, gmean-folded.

    Components are all lower-is-better and strictly positive:

    - ``wall_overhead``: best achievable wall-clock LBO-style overhead
      (total / distilled baseline) over the measured heap range;
    - ``cpu_overhead``: the same for task clock (CPU);
    - ``space_cost``: the smallest heap multiple the collector ran at —
      a collector that needs 2x the minimum heap pays for it here;
    - ``instability``: 1 + mean CV across the collector's measured
      points, so run-to-run noise costs score instead of hiding.
    """

    collector: str
    components: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        for name, value in self.components:
            if value <= 0 or not math.isfinite(value):
                raise ValueError(
                    f"{self.collector}: component {name} must be finite and "
                    f"positive, got {value}"
                )

    def component(self, name: str) -> float:
        for key, value in self.components:
            if key == name:
                return value
        raise KeyError(f"{self.collector} has no component {name!r}")

    def single_value(self) -> float:
        """The one-number ranking: geometric mean over components."""
        values = np.asarray([value for _, value in self.components], dtype=float)
        return float(np.exp(np.mean(np.log(values))))

    def breakdown(self) -> str:
        """One line per component plus the folded score."""
        lines = [f"{name:>14}: {value:.4f}" for name, value in self.components]
        lines.append(f"{'gmean':>14}: {self.single_value():.4f}")
        return "\n".join(lines)


def score_collector(
    collector: str,
    wall_overhead: float,
    cpu_overhead: float,
    space_cost: float,
    instability: float,
) -> CollectorScore:
    """Assemble a :class:`CollectorScore` in the canonical component order."""
    return CollectorScore(
        collector=collector,
        components=(
            ("wall_overhead", wall_overhead),
            ("cpu_overhead", cpu_overhead),
            ("space_cost", space_cost),
            ("instability", instability),
        ),
    )


def rank_collectors(scores: Sequence[CollectorScore]) -> List[CollectorScore]:
    """Sort ascending by the folded score (best first), name-stable."""
    return sorted(scores, key=lambda s: (s.single_value(), s.collector))


def render_ranking(scores: Sequence[CollectorScore]) -> str:
    """The ``chopin plan`` ranking table: rank, score, components."""
    ranked = rank_collectors(scores)
    header = (
        f"{'rank':>4}  {'collector':<12} {'score':>8}  "
        + "  ".join(f"{name:>14}" for name in SCORE_COMPONENTS)
    )
    lines = [header, "-" * len(header)]
    for position, score in enumerate(ranked, start=1):
        cells = "  ".join(
            f"{score.component(name):>14.4f}" for name in SCORE_COMPONENTS
        )
        lines.append(
            f"{position:>4}  {score.collector:<12} {score.single_value():>8.4f}  {cells}"
        )
    return "\n".join(lines)
