"""repro.planner — adaptive sweep planning: spend cells where the answer is.

The fixed-grid harness measures every (workload, collector, heap-factor)
cell; at production scale most of that grid is flat curve carrying no
information.  This subsystem replaces enumeration with an active loop:

- :mod:`.model` — per-(workload, collector) :class:`CurveModel` fit from
  completed cells, crossover and knee prediction, and cost estimation
  through the supervisor's EWMA :class:`~repro.resilience.CostModel`;
- :mod:`.policy` — the deterministic acquisition :class:`Planner`:
  scout, bisect-toward-crossover, refine-until-CI, skip-flat-regions,
  OOM-frontier search, all tie-broken by a seeded hash so schedules are
  byte-identical across runs;
- :mod:`.score` — CV-based :class:`CellGrade` validity scores per
  measured point and the gmean :class:`CollectorScore` ranking.

The driving loop lives in :func:`repro.harness.plans.run_adaptive`
(CLI: ``chopin plan``); the planner itself never executes anything —
it only decides, which is what keeps it pure and testable.
"""

from repro.planner.model import (
    FLAT_THRESHOLD,
    CurveModel,
    CurvePoint,
    baseline_for,
    crossover_points,
    family_components,
    predict_cost,
)
from repro.planner.policy import (
    PRIORITIES,
    REASON_BISECT,
    REASON_FRONTIER,
    REASON_KNEE,
    REASON_REFINE,
    REASON_SCOUT,
    LatencyPlanner,
    MinHeapPlanner,
    Planner,
    Proposal,
)
from repro.planner.score import (
    CV_HIGH,
    CV_VERY_HIGH,
    GRADE_EXCELLENT,
    GRADE_FAIR,
    GRADE_GOOD,
    GRADE_POOR,
    GRADES,
    SCORE_COMPONENTS,
    CellGrade,
    CollectorScore,
    coefficient_of_variation,
    grade_cell,
    rank_collectors,
    render_ranking,
    score_collector,
)

__all__ = [
    "CV_HIGH",
    "CV_VERY_HIGH",
    "CellGrade",
    "CollectorScore",
    "CurveModel",
    "CurvePoint",
    "FLAT_THRESHOLD",
    "GRADES",
    "GRADE_EXCELLENT",
    "GRADE_FAIR",
    "GRADE_GOOD",
    "GRADE_POOR",
    "LatencyPlanner",
    "MinHeapPlanner",
    "PRIORITIES",
    "Planner",
    "Proposal",
    "REASON_BISECT",
    "REASON_FRONTIER",
    "REASON_KNEE",
    "REASON_REFINE",
    "REASON_SCOUT",
    "SCORE_COMPONENTS",
    "baseline_for",
    "coefficient_of_variation",
    "crossover_points",
    "family_components",
    "grade_cell",
    "predict_cost",
    "rank_collectors",
    "render_ranking",
    "score_collector",
]
