"""Curve models fit from completed cells: where is the signal?

The planner's world model.  Each (workload, collector) family gets a
:class:`CurveModel` fit from whatever cells have completed so far: mean
wall/task cost per measured heap multiple, confidence intervals across
invocations, and the OOM frontier.  From two models the planner asks the
questions that drive acquisition:

- :func:`crossover_points` — where do two collectors' cost curves cross?
  LBO overhead is ``total / distilled_baseline`` with a *shared* baseline
  per benchmark (Cai et al.), so the heap factor where two overhead
  curves cross is exactly the heap factor where the raw mean wall curves
  cross — crossovers are baseline-independent, which is what lets an
  adaptive subset reproduce the fixed grid's crossovers without
  measuring the whole grid.
- :meth:`CurveModel.is_flat` — is a segment carrying information?  Flat
  segments (relative cost change below a threshold) are skipped.
- :meth:`CurveModel.knee` — where does the curve bend hardest?  The
  discrete-curvature knee approximates the min-heap cliff the paper's
  Section 4.2 puts extra grid resolution on.

Cost prediction delegates to the supervisor's EWMA
:class:`~repro.resilience.CostModel` (:func:`predict_cost`), so a warm
``costmodel.json`` lets ``chopin plan`` estimate the price of a schedule
before running it.  Everything here is a pure function of simulated
measurements — live wall-clock never feeds back into planning decisions,
which is what keeps planned schedules byte-identical across machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.lbo import RunCosts
from repro.core.stats import ConfidenceInterval, confidence_interval_95
from repro.resilience import CostModel

#: Relative wall-cost change below which a segment between two measured
#: multiples is considered flat (no crossover or knee worth chasing).
FLAT_THRESHOLD = 0.05


@dataclass(frozen=True)
class CurvePoint:
    """One measured point of a family's cost curve."""

    multiple: float
    mean_wall_s: float
    mean_task_s: float
    mean_distilled_wall_s: float
    mean_distilled_task_s: float
    wall_ci: ConfidenceInterval
    samples: int

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (inf for one sample)."""
        if self.wall_ci.mean == 0.0:
            return 0.0
        return abs(self.wall_ci.half_width / self.wall_ci.mean)


class CurveModel:
    """One (workload, collector) family's fitted cost curve.

    Built by :meth:`fit` from per-multiple invocation samples plus the
    set of multiples known to be infeasible (OOM).  Points are kept in
    ascending multiple order; predictions between measured points are
    linear interpolations, the same rule :func:`crossover_points` uses.
    """

    def __init__(
        self,
        benchmark: str,
        collector: str,
        points: Sequence[CurvePoint],
        ooms: Sequence[float] = (),
    ) -> None:
        self.benchmark = benchmark
        self.collector = collector
        self.points: Tuple[CurvePoint, ...] = tuple(
            sorted(points, key=lambda p: p.multiple)
        )
        self.ooms: Tuple[float, ...] = tuple(sorted(ooms))

    @classmethod
    def fit(
        cls,
        benchmark: str,
        collector: str,
        samples: Mapping[float, Sequence[RunCosts]],
        ooms: Sequence[float] = (),
    ) -> "CurveModel":
        """Fit the curve from per-multiple :class:`RunCosts` samples."""
        points = []
        for multiple, runs in samples.items():
            if not runs:
                continue
            walls = [c.wall_s for c in runs]
            points.append(
                CurvePoint(
                    multiple=multiple,
                    mean_wall_s=sum(walls) / len(walls),
                    mean_task_s=sum(c.task_s for c in runs) / len(runs),
                    mean_distilled_wall_s=sum(c.distilled_wall_s for c in runs)
                    / len(runs),
                    mean_distilled_task_s=sum(c.distilled_task_s for c in runs)
                    / len(runs),
                    wall_ci=confidence_interval_95(walls),
                    samples=len(runs),
                )
            )
        return cls(benchmark, collector, points, ooms)

    def multiples(self) -> Tuple[float, ...]:
        """The measured (feasible) multiples, ascending."""
        return tuple(p.multiple for p in self.points)

    def point(self, multiple: float) -> Optional[CurvePoint]:
        for p in self.points:
            if abs(p.multiple - multiple) < 1e-9:
                return p
        return None

    def series(self) -> Tuple[Tuple[float, float], ...]:
        """The (multiple, mean wall seconds) polyline crossovers use."""
        return tuple((p.multiple, p.mean_wall_s) for p in self.points)

    def predict_wall(self, multiple: float) -> Optional[float]:
        """Interpolated mean wall cost at ``multiple`` (None outside the
        measured range or with fewer than one point)."""
        if not self.points:
            return None
        pts = self.points
        if multiple <= pts[0].multiple:
            return pts[0].mean_wall_s if abs(multiple - pts[0].multiple) < 1e-9 else None
        for left, right in zip(pts, pts[1:]):
            if multiple <= right.multiple + 1e-9:
                span = right.multiple - left.multiple
                if span <= 0:
                    return left.mean_wall_s
                frac = (multiple - left.multiple) / span
                return left.mean_wall_s + frac * (right.mean_wall_s - left.mean_wall_s)
        return None

    def min_feasible_multiple(self) -> Optional[float]:
        """Smallest multiple the family is known to run at."""
        return self.points[0].multiple if self.points else None

    def oom_frontier(self) -> Optional[Tuple[float, float]]:
        """The (largest known-OOM, smallest known-feasible) bracket the
        collector's true minimum heap lies in, when both sides exist."""
        if not self.points or not self.ooms:
            return None
        feasible = self.points[0].multiple
        below = [m for m in self.ooms if m < feasible]
        if not below:
            return None
        return (max(below), feasible)

    def is_flat(
        self, lo: float, hi: float, threshold: float = FLAT_THRESHOLD
    ) -> bool:
        """Whether the measured segment [lo, hi] is flat: the relative
        wall-cost change between its endpoints is below ``threshold``."""
        a, b = self.point(lo), self.point(hi)
        if a is None or b is None:
            return False
        base = min(a.mean_wall_s, b.mean_wall_s)
        if base <= 0:
            return False
        return abs(a.mean_wall_s - b.mean_wall_s) / base <= threshold

    def knee(self) -> Optional[float]:
        """The measured multiple of maximum discrete curvature — the
        min-heap cliff where the time-space tradeoff bends hardest.
        Needs at least three points; ties break toward smaller heaps."""
        if len(self.points) < 3:
            return None
        best: Optional[Tuple[float, float]] = None
        for left, mid, right in zip(self.points, self.points[1:], self.points[2:]):
            dx1 = mid.multiple - left.multiple
            dx2 = right.multiple - mid.multiple
            if dx1 <= 0 or dx2 <= 0:
                continue
            slope1 = (mid.mean_wall_s - left.mean_wall_s) / dx1
            slope2 = (right.mean_wall_s - mid.mean_wall_s) / dx2
            curvature = abs(slope2 - slope1)
            if best is None or curvature > best[0] + 1e-12:
                best = (curvature, mid.multiple)
        return None if best is None else best[1]

    def best_distilled(self) -> Optional[Tuple[float, float]]:
        """The family's own best (distilled wall, distilled task) means —
        the family's contribution to the shared per-benchmark baseline."""
        if not self.points:
            return None
        return (
            min(p.mean_distilled_wall_s for p in self.points),
            min(p.mean_distilled_task_s for p in self.points),
        )


Series = Sequence[Tuple[float, float]]


def crossover_points(series_a: Series, series_b: Series) -> Tuple[float, ...]:
    """Heap multiples where two cost polylines cross.

    Both series are (multiple, value) pairs; only multiples measured in
    *both* participate.  A sign change of the difference between
    adjacent common multiples yields one crossover, located by linear
    interpolation of the difference; an exact tie at a grid point counts
    as a crossover at that point.  Returned ascending.
    """
    a = {m: v for m, v in series_a}
    b = {m: v for m, v in series_b}
    common = sorted(set(a) & set(b))
    if len(common) < 2:
        return ()
    crossings: List[float] = []
    diffs = [(m, a[m] - b[m]) for m in common]
    for (m0, d0), (m1, d1) in zip(diffs, diffs[1:]):
        if d0 == 0.0:
            if not crossings or abs(crossings[-1] - m0) > 1e-9:
                crossings.append(m0)
            continue
        if d0 * d1 < 0.0:
            frac = d0 / (d0 - d1)
            crossings.append(m0 + frac * (m1 - m0))
    if diffs[-1][1] == 0.0:
        m_last = diffs[-1][0]
        if not crossings or abs(crossings[-1] - m_last) > 1e-9:
            crossings.append(m_last)
    return tuple(crossings)


def predict_cost(
    cost_model: Optional[CostModel],
    benchmark: str,
    collector: str,
    default: float = 0.0,
) -> float:
    """Expected wall-clock price of one more cell of this family.

    Delegates to the supervisor's EWMA model when one is supplied (warm
    from :meth:`~repro.resilience.CostModel.load`); informational only —
    planning decisions never depend on it, so schedules stay
    deterministic whatever the machine's speed.
    """
    if cost_model is None:
        return default
    estimate = cost_model.estimate((benchmark, collector))
    return default if estimate is None else estimate


def baseline_for(models: Sequence[CurveModel]) -> Optional[Tuple[float, float]]:
    """The benchmark's shared distilled (wall, task) baseline over every
    fitted family — the adaptive analogue of
    :func:`repro.core.lbo.distill_baseline`, over measured cells only."""
    bests = [m.best_distilled() for m in models]
    bests = [b for b in bests if b is not None]
    if not bests:
        return None
    return (min(b[0] for b in bests), min(b[1] for b in bests))


def family_components(
    model: CurveModel, baseline: Tuple[float, float]
) -> Optional[Dict[str, float]]:
    """One family's lower-is-better score components (None: no data).

    ``wall_overhead``/``cpu_overhead`` are the family's best achievable
    overheads against the benchmark's shared distilled baseline;
    ``space_cost`` is the smallest feasible multiple; ``instability`` is
    1 + the mean relative CI half-width across multi-sample points, so
    run-to-run spread costs score (single-sample points contribute
    nothing here — the :class:`~repro.planner.score.CellGrade` already
    flags them).
    """
    if not model.points:
        return None
    base_wall, base_task = baseline
    if base_wall <= 0 or base_task <= 0:
        return None
    spreads = [
        p.relative_half_width
        for p in model.points
        if p.samples >= 2 and p.wall_ci.mean
    ]
    instability = 1.0 + (sum(spreads) / len(spreads) if spreads else 0.0)
    return {
        "wall_overhead": min(p.mean_wall_s for p in model.points) / base_wall,
        "cpu_overhead": min(p.mean_task_s for p in model.points) / base_task,
        "space_cost": model.points[0].multiple,
        "instability": instability,
    }
