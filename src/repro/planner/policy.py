"""Acquisition policies: which cell is worth measuring next?

One :class:`Planner` per workload drives the propose → execute → refit
loop.  Each round it looks at the fitted :class:`~repro.planner.model.CurveModel`
per collector and emits :class:`Proposal` objects, one per cell, from
four deterministic policies in priority order:

- **scout** — a collector with no measurements gets three anchors (the
  smallest, a middle, and the largest grid multiple) at one invocation
  each, enough to see the curve's coarse shape and feasibility;
- **bisect-toward-crossover** — wherever two collectors' mean-cost
  curves change sign between adjacent measured multiples, the unmeasured
  *grid* multiple nearest the bracket midpoint is proposed for both
  curves, shrinking the bracket until it is grid-adjacent (the planner
  only ever proposes grid cells, which is what keeps every executed cell
  bit-identical to the fixed grid);
- **frontier** — a collector that OOMs at small heaps gets its
  feasibility frontier bisected the same way, locating the min-heap
  multiple the space-cost score needs;
- **refine-until-CI** — grid-adjacent bracket endpoints gain one
  invocation per round until their confidence interval's relative
  half-width reaches ``target_ci`` (or the grid's invocation count is
  exhausted), so crossover positions are interpolated from means as
  trustworthy as the fixed grid's;
- **knee** — one proposal per collector per round sharpening the curve's
  maximum-curvature point, skipped while crossover work remains and
  wherever the curve is flat.

Flat segments (``skip-flat-regions``) generate no candidates at all:
both curves moving less than ``flat_threshold`` between adjacent
measured points is the planner's definition of "no information here".

Every decision is a pure function of simulated results and the seed.
Ties break on a seeded sha256 of the cell coordinates — never on dict
order, never on live wall-clock — so the same seed and cache state
replays a byte-identical schedule (pinned by test).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.lbo import RunCosts, costs_from_iteration
from repro.core.stats import confidence_interval_95
from repro.harness.engine import CellResult
from repro.harness.runner import RunConfig
from repro.planner.model import FLAT_THRESHOLD, CurveModel
from repro.workloads.spec import WorkloadSpec

#: Proposal reasons, also the priority ladder (higher runs first when a
#: budget forces a cut).
REASON_SCOUT = "scout"
REASON_BISECT = "bisect"
REASON_FRONTIER = "frontier"
REASON_REFINE = "refine"
REASON_KNEE = "knee"

PRIORITIES: Dict[str, float] = {
    REASON_SCOUT: 100.0,
    REASON_BISECT: 80.0,
    REASON_FRONTIER: 70.0,
    REASON_REFINE: 60.0,
    REASON_KNEE: 40.0,
}


@dataclass(frozen=True)
class Proposal:
    """One cell the policy wants measured, with its why and its rank."""

    benchmark: str
    collector: str
    multiple: float
    invocation: int
    reason: str
    priority: float
    tiebreak: str

    @property
    def sort_key(self) -> Tuple[float, str]:
        """Global ordering: priority descending, then the seeded hash."""
        return (-self.priority, self.tiebreak)


def _tiebreak(seed: int, benchmark: str, collector: str, multiple: float, invocation: int) -> str:
    """Seeded, coordinate-determined tie-break token.

    ``float.hex`` keeps the hash locale- and precision-independent — the
    same trick the engine's cache key uses.
    """
    blob = f"{seed}:{benchmark}:{collector}:{float(multiple).hex()}:{invocation}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Planner:
    """Per-workload acquisition policy over one collector set.

    Feed executed cells back with :meth:`observe`; ask :meth:`propose`
    for the next round's cells.  An empty proposal list means the
    workload is *settled*: every detected crossover bracket is
    grid-adjacent with endpoints refined to the CI target, every OOM
    frontier is located, and no knee work remains.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        collectors: Sequence[str],
        multiples: Sequence[float],
        config: RunConfig,
        target_ci: float = 0.05,
        seed: int = 0,
        flat_threshold: float = FLAT_THRESHOLD,
    ) -> None:
        if target_ci < 0:
            raise ValueError(f"target_ci must be non-negative, got {target_ci}")
        self.spec = spec
        self.collectors = tuple(collectors)
        self.multiples = tuple(sorted(multiples))
        self.config = config
        self.target_ci = target_ci
        self.seed = seed
        self.flat_threshold = flat_threshold
        #: (collector, multiple) -> per-invocation costs, in invocation order.
        self.samples: Dict[Tuple[str, float], List[RunCosts]] = {}
        #: Multiples proven infeasible, per collector.
        self.ooms: Dict[str, Set[float]] = {}

    # ------------------------------------------------------------------
    # State

    def observe(self, collector: str, multiple: float, result: CellResult) -> None:
        """Fold one executed cell back into the planner's state."""
        if result.oom is not None:
            self.ooms.setdefault(collector, set()).add(multiple)
            return
        self.samples.setdefault((collector, multiple), []).append(
            costs_from_iteration(result.timed)
        )

    def wall_samples(self, collector: str, multiple: float) -> List[float]:
        """Per-invocation wall times at one point (for grading)."""
        return [c.wall_s for c in self.samples.get((collector, multiple), [])]

    def models(self) -> Dict[str, CurveModel]:
        """Fit one curve model per collector from the state so far."""
        out: Dict[str, CurveModel] = {}
        for collector in self.collectors:
            table = {
                multiple: runs
                for (c, multiple), runs in self.samples.items()
                if c == collector
            }
            out[collector] = CurveModel.fit(
                self.spec.name, collector, table, sorted(self.ooms.get(collector, ()))
            )
        return out

    def _count(self, collector: str, multiple: float) -> int:
        return len(self.samples.get((collector, multiple), ()))

    def _infeasible(self, collector: str, multiple: float) -> bool:
        return multiple in self.ooms.get(collector, ())

    def _touched(self, collector: str, multiple: float) -> bool:
        return self._count(collector, multiple) > 0 or self._infeasible(collector, multiple)

    # ------------------------------------------------------------------
    # Policies

    def _anchors(self) -> Tuple[float, ...]:
        """Scout anchors: ends of the grid plus the multiple nearest 2x
        (where the paper's figures put the eye first)."""
        if len(self.multiples) <= 3:
            return self.multiples
        middle = min(self.multiples, key=lambda m: (abs(m - 2.0), m))
        return tuple(sorted({self.multiples[0], middle, self.multiples[-1]}))

    def _propose_point(
        self, out: Dict[Tuple[str, float, int], Proposal], collector: str,
        multiple: float, reason: str,
    ) -> None:
        """Queue the point's next invocation under ``reason`` (dedup by
        cell coordinates, higher priority wins)."""
        if self._infeasible(collector, multiple):
            return
        invocation = self._count(collector, multiple)
        if invocation >= self.config.invocations:
            return
        key = (collector, multiple, invocation)
        priority = PRIORITIES[reason]
        existing = out.get(key)
        if existing is not None and existing.priority >= priority:
            return
        out[key] = Proposal(
            benchmark=self.spec.name,
            collector=collector,
            multiple=multiple,
            invocation=invocation,
            reason=reason,
            priority=priority,
            tiebreak=_tiebreak(self.seed, self.spec.name, collector, multiple, invocation),
        )

    def _interior(self, lo: float, hi: float) -> Tuple[float, ...]:
        """Grid multiples strictly inside (lo, hi)."""
        return tuple(m for m in self.multiples if lo + 1e-9 < m < hi - 1e-9)

    def _midpoint_candidate(self, lo: float, hi: float) -> Optional[float]:
        """The unproposable-nowhere interior grid multiple nearest the
        bracket midpoint (None when the bracket is grid-adjacent)."""
        interior = self._interior(lo, hi)
        if not interior:
            return None
        mid = (lo + hi) / 2.0
        return min(interior, key=lambda m: (abs(m - mid), m))

    def _needs_refinement(self, collector: str, multiple: float) -> bool:
        """Refine-until-CI: does this point's mean deserve more samples?"""
        runs = self.samples.get((collector, multiple))
        if not runs:
            return False
        if len(runs) >= self.config.invocations:
            return False
        if len(runs) < 2:
            return True  # one sample: CI half-width is infinite by definition
        walls = [c.wall_s for c in runs]
        mean = sum(walls) / len(walls)
        if mean == 0.0:
            return False
        ci = confidence_interval_95(walls)
        return abs(ci.half_width / mean) > self.target_ci

    def _crossover_work(
        self, out: Dict[Tuple[str, float, int], Proposal], models: Dict[str, CurveModel]
    ) -> bool:
        """Bisect sign-change brackets; refine grid-adjacent endpoints.
        Returns True when any crossover work (even refinement) remains."""
        busy = False
        for i, a in enumerate(self.collectors):
            for b in self.collectors[i + 1 :]:
                series_a = dict(models[a].series())
                series_b = dict(models[b].series())
                common = sorted(set(series_a) & set(series_b))
                for lo, hi in zip(common, common[1:]):
                    d0 = series_a[lo] - series_b[lo]
                    d1 = series_a[hi] - series_b[hi]
                    if d0 * d1 > 0.0:
                        continue  # same sign: no crossover in this segment
                    if models[a].is_flat(lo, hi, self.flat_threshold) and models[
                        b
                    ].is_flat(lo, hi, self.flat_threshold):
                        # Both curves flat across the bracket: the "cross"
                        # is two near-identical lines touching — not a
                        # knee-shaped tradeoff worth cells.
                        continue
                    candidate = self._midpoint_candidate(lo, hi)
                    if candidate is not None:
                        self._propose_point(out, a, candidate, REASON_BISECT)
                        self._propose_point(out, b, candidate, REASON_BISECT)
                        busy = True
                        continue
                    for endpoint in (lo, hi):
                        for collector in (a, b):
                            if self._needs_refinement(collector, endpoint):
                                self._propose_point(out, collector, endpoint, REASON_REFINE)
                                busy = True
        return busy

    def _frontier_work(
        self, out: Dict[Tuple[str, float, int], Proposal], models: Dict[str, CurveModel]
    ) -> None:
        """Locate each collector's min-heap frontier at grid resolution."""
        for collector in self.collectors:
            model = models[collector]
            bracket = model.oom_frontier()
            if bracket is not None:
                candidate = self._midpoint_candidate(*bracket)
                if candidate is not None:
                    self._propose_point(out, collector, candidate, REASON_FRONTIER)
                continue
            # Everything measured so far OOMed: walk up the grid.
            known_oom = self.ooms.get(collector, set())
            if known_oom and not model.points:
                above = [m for m in self.multiples if m > max(known_oom)]
                if above:
                    self._propose_point(out, collector, min(above), REASON_FRONTIER)

    def _knee_work(
        self, out: Dict[Tuple[str, float, int], Proposal], models: Dict[str, CurveModel]
    ) -> None:
        """Sharpen each curve's knee: at most one proposal per collector."""
        for collector in self.collectors:
            model = models[collector]
            knee = model.knee()
            if knee is None:
                continue
            measured = model.multiples()
            idx = measured.index(knee)
            neighbours = []
            if idx > 0:
                neighbours.append((measured[idx - 1], knee))
            if idx + 1 < len(measured):
                neighbours.append((knee, measured[idx + 1]))
            for lo, hi in neighbours:
                if model.is_flat(lo, hi, self.flat_threshold):
                    continue
                candidate = self._midpoint_candidate(lo, hi)
                if candidate is not None and not self._touched(collector, candidate):
                    self._propose_point(out, collector, candidate, REASON_KNEE)
                    break

    # ------------------------------------------------------------------
    # The round

    def propose(self) -> List[Proposal]:
        """The next round's cells, best first (empty when settled)."""
        out: Dict[Tuple[str, float, int], Proposal] = {}
        for collector in self.collectors:
            if not any(self._touched(collector, m) for m in self.multiples):
                for anchor in self._anchors():
                    self._propose_point(out, collector, anchor, REASON_SCOUT)
        models = self.models()
        busy = self._crossover_work(out, models)
        self._frontier_work(out, models)
        if not busy:
            # Knees are luxury cells: only once crossovers are resolved.
            self._knee_work(out, models)
        return sorted(out.values(), key=lambda p: p.sort_key)

    def settled(self) -> bool:
        """True when the policy has nothing left to ask for."""
        return not self.propose()


class _CampaignPlanner:
    """Shared plumbing for the non-LBO campaign policies.

    Holds the candidate grid, the OOM ledger, and the proposal
    bookkeeping (dedup, priority, seeded tie-break) that
    :class:`LatencyPlanner` and :class:`MinHeapPlanner` have in common
    with :class:`Planner`.  Subclasses define what an observation is
    (``_count``) and which cells the campaign still wants
    (``propose``).
    """

    #: Per-point invocation ceiling; ``None`` means the grid's
    #: ``config.invocations``.
    invocation_cap: Optional[int] = None

    def __init__(
        self,
        spec: WorkloadSpec,
        collectors: Sequence[str],
        multiples: Sequence[float],
        config: RunConfig,
        seed: int = 0,
    ) -> None:
        if not multiples:
            raise ValueError("a campaign planner needs a candidate multiple grid")
        self.spec = spec
        self.collectors = tuple(collectors)
        self.multiples = tuple(sorted(multiples))
        self.config = config
        self.seed = seed
        #: Multiples proven infeasible, per collector.
        self.ooms: Dict[str, Set[float]] = {}

    def _count(self, collector: str, multiple: float) -> int:
        raise NotImplementedError

    def propose(self) -> List[Proposal]:
        raise NotImplementedError

    def _infeasible(self, collector: str, multiple: float) -> bool:
        return multiple in self.ooms.get(collector, ())

    def _touched(self, collector: str, multiple: float) -> bool:
        return self._count(collector, multiple) > 0 or self._infeasible(collector, multiple)

    def _anchors(self) -> Tuple[float, ...]:
        """Scout anchors: ends of the grid plus the multiple nearest 2x
        (same rule as :meth:`Planner._anchors`)."""
        if len(self.multiples) <= 3:
            return self.multiples
        middle = min(self.multiples, key=lambda m: (abs(m - 2.0), m))
        return tuple(sorted({self.multiples[0], middle, self.multiples[-1]}))

    def _propose_point(
        self, out: Dict[Tuple[str, float, int], Proposal], collector: str,
        multiple: float, reason: str,
    ) -> None:
        """Queue the point's next invocation under ``reason`` (dedup by
        cell coordinates, higher priority wins)."""
        if self._infeasible(collector, multiple):
            return
        invocation = self._count(collector, multiple)
        cap = self.config.invocations if self.invocation_cap is None else self.invocation_cap
        if invocation >= cap:
            return
        key = (collector, multiple, invocation)
        priority = PRIORITIES[reason]
        existing = out.get(key)
        if existing is not None and existing.priority >= priority:
            return
        out[key] = Proposal(
            benchmark=self.spec.name,
            collector=collector,
            multiple=multiple,
            invocation=invocation,
            reason=reason,
            priority=priority,
            tiebreak=_tiebreak(self.seed, self.spec.name, collector, multiple, invocation),
        )

    def settled(self) -> bool:
        """True when the policy has nothing left to ask for."""
        return not self.propose()


class LatencyPlanner(_CampaignPlanner):
    """Acquisition policy for metered-latency campaigns.

    Scouts each collector's anchors, walks OOMed collectors up the grid
    to a feasible multiple, then spends invocations where the metered
    CDF *tail* is still moving: a point keeps earning cells while adding
    the latest invocation shifted its tail summary (max of p99/p99.9
    across smoothing windows, computed by the driver and fed through
    :meth:`observe`) by more than ``tail_threshold`` relative to the
    running mean of the earlier invocations.  A single invocation is
    never trusted — the second is always proposed — and a settled point
    has either a stable tail or the grid's full invocation count.

    Determinism matches :class:`Planner`: proposals are pure functions
    of observations and the seed, so schedules replay byte-identically.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        collectors: Sequence[str],
        multiples: Sequence[float],
        config: RunConfig,
        tail_threshold: float = 0.05,
        seed: int = 0,
    ) -> None:
        if tail_threshold < 0:
            raise ValueError(f"tail_threshold must be non-negative, got {tail_threshold}")
        super().__init__(spec, collectors, multiples, config, seed=seed)
        self.tail_threshold = tail_threshold
        #: (collector, multiple) -> per-invocation tail summaries (s).
        self.tails: Dict[Tuple[str, float], List[float]] = {}

    def observe(
        self,
        collector: str,
        multiple: float,
        result: CellResult,
        tail: Optional[float] = None,
    ) -> None:
        """Fold one executed cell back in; ``tail`` is the driver-computed
        tail summary for feasible cells (required unless the cell OOMed)."""
        if result.oom is not None:
            self.ooms.setdefault(collector, set()).add(multiple)
            return
        if tail is None:
            raise ValueError("latency planner needs a tail summary for feasible cells")
        self.tails.setdefault((collector, multiple), []).append(float(tail))

    def tail_samples(self, collector: str, multiple: float) -> List[float]:
        """Per-invocation tail summaries at one point (for grading)."""
        return list(self.tails.get((collector, multiple), ()))

    def _count(self, collector: str, multiple: float) -> int:
        return len(self.tails.get((collector, multiple), ()))

    def _tail_moving(self, tails: Sequence[float]) -> bool:
        """Did the latest invocation move the running tail estimate?"""
        previous = tails[:-1]
        mean = sum(previous) / len(previous)
        if mean == 0.0:
            return False
        return abs(tails[-1] - mean) / mean > self.tail_threshold

    def propose(self) -> List[Proposal]:
        """The next round's cells, best first (empty when settled)."""
        out: Dict[Tuple[str, float, int], Proposal] = {}
        for collector in self.collectors:
            if not any(self._touched(collector, m) for m in self.multiples):
                for anchor in self._anchors():
                    self._propose_point(out, collector, anchor, REASON_SCOUT)
                continue
            known_oom = self.ooms.get(collector, set())
            feasible = any((collector, m) in self.tails for m in self.multiples)
            if known_oom and not feasible:
                # Everything measured so far OOMed: walk up the grid until
                # the collector has a feasible point to report tails from.
                above = [m for m in self.multiples if m > max(known_oom)]
                if above:
                    self._propose_point(out, collector, min(above), REASON_FRONTIER)
                continue
            for multiple in self.multiples:
                tails = self.tails.get((collector, multiple))
                if not tails or len(tails) >= self.config.invocations:
                    continue
                if len(tails) < 2 or self._tail_moving(tails):
                    self._propose_point(out, collector, multiple, REASON_REFINE)
        return sorted(out.values(), key=lambda p: p.sort_key)


class MinHeapPlanner(_CampaignPlanner):
    """Acquisition policy for min-heap campaigns over a multiple grid.

    Finds, per collector, the smallest *grid* multiple that runs — the
    grid-resolution analogue of
    :func:`~repro.core.minheap.find_min_heap` — by reusing the LBO
    planner's OOM-frontier bisection shape: scout the grid's ends, then
    repeatedly probe the value-midpoint-nearest candidate between the
    highest known-OOM and the lowest known-feasible multiple until the
    bracket is grid-adjacent.  Feasibility needs one invocation per
    point, so every proposal is invocation 0; outcomes are monotone in
    heap size, so the settled answer is *exact* against the full grid's.
    """

    invocation_cap = 1

    def __init__(
        self,
        spec: WorkloadSpec,
        collectors: Sequence[str],
        multiples: Sequence[float],
        config: RunConfig,
        seed: int = 0,
    ) -> None:
        super().__init__(spec, collectors, multiples, config, seed=seed)
        #: (collector, multiple) -> per-invocation wall times (grading).
        self.samples: Dict[Tuple[str, float], List[float]] = {}

    def observe(self, collector: str, multiple: float, result: CellResult) -> None:
        """Fold one executed probe back into the feasibility ledger."""
        if result.oom is not None:
            self.ooms.setdefault(collector, set()).add(multiple)
            return
        self.samples.setdefault((collector, multiple), []).append(
            costs_from_iteration(result.timed).wall_s
        )

    def wall_samples(self, collector: str, multiple: float) -> List[float]:
        """Per-invocation wall times at one point (for grading)."""
        return list(self.samples.get((collector, multiple), ()))

    def _count(self, collector: str, multiple: float) -> int:
        return len(self.samples.get((collector, multiple), ()))

    def propose(self) -> List[Proposal]:
        """The next round's probes, best first (empty when settled)."""
        out: Dict[Tuple[str, float, int], Proposal] = {}
        for collector in self.collectors:
            feasible = {m for m in self.multiples if (collector, m) in self.samples}
            known_oom = self.ooms.get(collector, set())
            if not feasible and not known_oom:
                # Scout the bracket ends: the smallest multiple (the likely
                # OOM side) and the largest (the feasibility anchor).
                self._propose_point(out, collector, self.multiples[0], REASON_SCOUT)
                if len(self.multiples) > 1:
                    self._propose_point(out, collector, self.multiples[-1], REASON_SCOUT)
                continue
            if not feasible:
                if self.multiples[-1] in known_oom:
                    continue  # infeasible at every candidate: settled, no answer
                above = [m for m in self.multiples if m > max(known_oom)]
                if above:
                    self._propose_point(out, collector, min(above), REASON_FRONTIER)
                continue
            lowest_feasible = min(feasible)
            below_oom = {m for m in known_oom if m < lowest_feasible}
            candidates = [
                m
                for m in self.multiples
                if m < lowest_feasible and (not below_oom or m > max(below_oom))
            ]
            if not candidates:
                continue  # bracket grid-adjacent: settled, answer = lowest_feasible
            lo_edge = max(below_oom) if below_oom else candidates[0]
            mid = (lo_edge + lowest_feasible) / 2.0
            candidate = min(candidates, key=lambda m: (abs(m - mid), m))
            self._propose_point(out, collector, candidate, REASON_BISECT)
        return sorted(out.values(), key=lambda p: p.sort_key)

    def min_multiples(self) -> Dict[str, float]:
        """Smallest feasible grid multiple per collector (exact once the
        planner is settled; collectors feasible nowhere are absent)."""
        out: Dict[str, float] = {}
        for collector in self.collectors:
            feasible = [m for m in self.multiples if (collector, m) in self.samples]
            if feasible:
                out[collector] = min(feasible)
        return out
