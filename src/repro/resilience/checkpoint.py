"""Checkpoint journal: resumable sweeps over the content-addressed cache.

A production-scale sweep is hours of cells; losing it to a SIGINT at 95%
is not acceptable.  The result cache already persists every completed
cell, so resumption is *almost* free — what is missing is a cheap,
crash-safe record of which keys a sweep has actually finished, so a
resumed run can (a) report how much of the batch it inherited and (b)
skip even the cache probe bookkeeping for work it knows is done.

:class:`CheckpointJournal` is that record: an append-only JSONL manifest
of completed cell keys.  Appends are line-atomic on POSIX (single small
``write`` in append mode) and *durable* — each record is flushed and
``fsync``'d before ``record`` returns, so a ``kill -9`` landing right
after a cell completes cannot lose the line the resume path depends on.
The reader tolerates a torn final line — the worst an interruption can
cost is re-executing the one cell whose record was being written.  The
journal is *advisory*: results always come from the cache or fresh
execution, so a journal that is stale, deleted, or lists keys the cache
no longer holds degrades to a cold start, never to a wrong answer.

Journals accumulate cruft over many interrupted runs (torn lines,
duplicate keys from cache-hit reconciliation); ``chopin doctor``
compacts them via :func:`repro.resilience.doctor.compact_journal`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Set, Union


class CheckpointJournal:
    """Append-only manifest of completed cell keys for one sweep.

    ``record`` appends one JSON line per completed cell (positive *and*
    negative results — a cached OOM is progress too); ``completed``
    re-reads the manifest.  Opening the same path across processes is
    the resume story: pass the journal of the interrupted run to the new
    engine and it picks up where the old one stopped.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._torn_tail = False
        self._completed: Set[str] = self._load()

    def _load(self) -> Set[str]:
        """Parse the manifest, ignoring torn or foreign lines."""
        done: Set[str] = set()
        try:
            text = self.path.read_text()
        except OSError:
            return done
        # A file not ending in a newline was torn mid-append; the next
        # record must start on a fresh line or it would glue onto the
        # tear and both lines would be lost.
        self._torn_tail = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final line from an interrupted writer
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                done.add(entry["key"])
        return done

    def completed(self) -> Set[str]:
        """Keys this journal knows are done (snapshot, not a live view)."""
        return set(self._completed)

    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def record(self, key: str, oom: bool = False) -> None:
        """Journal one completed cell, durably.  Idempotent per key; IO
        failures are swallowed (the journal accelerates resumption, it
        is not a correctness dependency).

        The write is flushed and ``os.fsync``'d before returning: a
        journal line exists on disk for every cell whose completion this
        process has acknowledged, so even ``kill -9`` immediately after
        a cell finishes costs a resume nothing.
        """
        if key in self._completed:
            return
        self._completed.add(key)
        line = json.dumps({"key": key, "oom": oom}, sort_keys=True)
        if self._torn_tail:
            line = "\n" + line
            self._torn_tail = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass
