"""Cache and journal self-healing: the ``chopin doctor`` machinery.

A long-lived result cache accumulates rot: torn writes from power loss,
entries pickled under an older schema, files a disk error garbled.  The
engine already *tolerates* all of these (a bad entry reads as a miss and
is counted), but tolerance is not hygiene — a cache full of corpses
re-counts the same corruption on every sweep and hides real rot in the
noise.  This module repairs instead of tolerating:

- :func:`scan_cache` walks every entry, loads and validates it exactly
  the way :class:`~repro.harness.engine.ResultCache` would, and
  *quarantines* the failures (moved to ``<root>/_quarantine/``, never
  deleted — rot is evidence) with a per-kind breakdown: ``corrupt``
  (unreadable or not a result), ``stale`` (a result object missing
  fields the current schema requires), ``misplaced`` (a valid result
  filed under the wrong key — a torn rename or a copied cache);
- :func:`compact_journal` rewrites the append-only checkpoint journal:
  torn lines dropped, duplicate keys collapsed to one line, the rewrite
  crash-safe (temp file + fsync + atomic rename) so the doctor itself
  cannot tear the journal it is healing;
- :func:`verify_cells` re-simulates a deterministic sample of cached
  cells and compares payloads bit-for-bit — the last line of defence
  against *plausible* corruption (an entry that unpickles fine but
  carries wrong numbers), quarantining any mismatch.

Engine imports are deferred inside functions: the engine imports
:mod:`repro.resilience`, so a module-level import here would be a cycle.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Where quarantined entries go, inside the cache root.  The directory
#: name starts with an underscore so the two-hex-digit shard globs of
#: the cache layout can never collide with it.
QUARANTINE_DIR = "_quarantine"


@dataclass
class CacheScan:
    """What :func:`scan_cache` found (and moved)."""

    scanned: int = 0
    healthy: int = 0
    corrupt: int = 0  # unreadable, unpicklable, or not a CellResult
    stale: int = 0  # a CellResult missing current-schema fields
    misplaced: int = 0  # valid result filed under the wrong key
    quarantined: int = 0
    quarantine_dir: Optional[Path] = None
    #: ``(path, kind)`` for every unhealthy entry, in scan order.
    problems: List[Tuple[Path, str]] = field(default_factory=list)

    @property
    def unhealthy(self) -> int:
        return self.corrupt + self.stale + self.misplaced


@dataclass
class JournalCompaction:
    """Before/after accounting for :func:`compact_journal`."""

    lines_before: int = 0
    lines_after: int = 0
    torn: int = 0  # unparseable or foreign lines dropped
    duplicates: int = 0  # repeat keys collapsed
    compacted: bool = False  # False: journal was missing or already clean


@dataclass
class VerifyReport:
    """Outcome of :func:`verify_cells`: sampled recomputation."""

    sampled: int = 0
    matched: int = 0
    mismatched: int = 0
    quarantined: int = 0
    #: Keys whose cached payload diverged from recomputation.
    divergent_keys: List[str] = field(default_factory=list)


def _missing_fields(obj: object) -> List[str]:
    """Dataclass fields the unpickled object lacks — the signature of an
    entry written under an older schema."""
    return [
        f.name
        for f in dataclasses.fields(type(obj))
        if not hasattr(obj, f.name)
    ]


def _diagnose(path: Path, key: str) -> Optional[str]:
    """Classify one cache entry: None when healthy, else the problem kind."""
    import pickle

    from repro.harness.engine import CellResult

    try:
        with path.open("rb") as fh:
            result = pickle.load(fh)
    except Exception:
        return "corrupt"
    if not isinstance(result, CellResult):
        return "corrupt"
    if _missing_fields(result):
        return "stale"
    timed = getattr(result, "timed", None)
    if timed is not None and dataclasses.is_dataclass(timed) and _missing_fields(timed):
        return "stale"  # the nested IterationResult predates the schema
    if result.key != key:
        return "misplaced"
    return None


def _quarantine(path: Path, quarantine_dir: Path) -> bool:
    """Move one entry into quarantine (never delete — rot is evidence)."""
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine_dir / f"{path.name}.{suffix}"
        os.replace(str(path), str(target))
    except OSError:
        return False
    return True


#: Every on-disk layout a cache root may carry: flat (``shards=1``) plus
#: the one/two/three-hex-digit fan-outs.  The glob set is disjoint by
#: construction — an entry sits at exactly one depth, and the quarantine
#: directory's leading underscore can never match a hex-prefix pattern —
#: so a union over these never counts a file twice.
_LAYOUT_GLOBS = ("*.pkl", "?/*.pkl", "??/*.pkl", "???/*.pkl")


def scan_cache(root: Union[str, Path], quarantine: bool = True) -> CacheScan:
    """Scan a result-cache directory and quarantine unhealthy entries.

    Both cache generations are scanned in one pass: the legacy flat and
    two-hex-digit :class:`~repro.harness.engine.ResultCache` layout and
    every :class:`~repro.service.shards.ShardedResultCache` fan-out
    (``<root>/<key[:width]>/<key>.pkl`` for widths 0–3).  Anything that
    fails to load, predates the current schema, or is filed under the
    wrong key — including a valid result sitting in a shard directory
    whose hex prefix disagrees with its key — is moved to
    ``<root>/_quarantine/`` when ``quarantine`` is set (pass ``False``
    for a dry run).
    """
    root = Path(root)
    scan = CacheScan(quarantine_dir=root / QUARANTINE_DIR)
    if not root.is_dir():
        return scan
    paths = sorted({path for glob in _LAYOUT_GLOBS for path in root.glob(glob)})
    for path in paths:
        scan.scanned += 1
        kind = _diagnose(path, path.stem)
        if kind is None and path.parent != root and not path.stem.startswith(
            path.parent.name
        ):
            kind = "misplaced"  # healthy payload, wrong shard directory
        if kind is None:
            scan.healthy += 1
            continue
        setattr(scan, kind, getattr(scan, kind) + 1)
        scan.problems.append((path, kind))
        if quarantine and _quarantine(path, scan.quarantine_dir):
            scan.quarantined += 1
    return scan


def compact_journal(path: Union[str, Path]) -> JournalCompaction:
    """Rewrite a checkpoint journal: drop torn lines, collapse duplicates.

    The rewrite is crash-safe (temp file in the same directory, fsync,
    atomic rename) and preserves first-seen order, so a journal the
    doctor compacts resumes exactly the cells the original did.  A
    missing or already-clean journal is left untouched.
    """
    path = Path(path)
    report = JournalCompaction()
    try:
        text = path.read_text()
    except OSError:
        return report
    seen: Dict[str, str] = {}
    for line in text.splitlines():
        if line:
            report.lines_before += 1
        else:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            report.torn += 1
            continue
        if not (isinstance(entry, dict) and isinstance(entry.get("key"), str)):
            report.torn += 1
            continue
        if entry["key"] in seen:
            report.duplicates += 1
            continue
        seen[entry["key"]] = json.dumps(entry, sort_keys=True)
    report.lines_after = len(seen)
    torn_tail = bool(text) and not text.endswith("\n")
    if report.lines_after == report.lines_before and not torn_tail:
        return report  # already clean: do not churn the inode
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".compact")
    try:
        with os.fdopen(fd, "w") as fh:
            for line in seen.values():
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    report.compacted = True
    return report


def verify_cells(
    cells: Sequence[object],
    cache_root: Union[str, Path],
    sample: int = 8,
    quarantine: bool = True,
) -> VerifyReport:
    """Re-simulate a deterministic sample of cached cells and compare.

    ``cells`` enumerates candidate :class:`~repro.harness.engine.Cell`
    jobs (e.g. from a plan); of those with a cache entry, the ``sample``
    lowest keys are recomputed and compared payload-for-payload.  A
    divergent entry is quarantined — it would silently poison every
    future warm sweep — and reported by key.
    """
    import pickle

    from repro.harness.engine import ResultCache, _execute_cell, cell_key

    if sample < 1:
        raise ValueError(f"verification sample must be at least 1, got {sample}")
    cache = ResultCache(cache_root)
    report = VerifyReport()
    keyed = sorted(
        ((cell_key(cell), cell) for cell in cells), key=lambda pair: pair[0]
    )
    for key, cell in keyed:
        if report.sampled >= sample:
            break
        cached = cache.get(key)
        if cached is None:
            continue
        report.sampled += 1
        fresh = _execute_cell((cell, key))
        if pickle.dumps((cached.timed, cached.oom)) == pickle.dumps(
            (fresh.timed, fresh.oom)
        ):
            report.matched += 1
            continue
        report.mismatched += 1
        report.divergent_keys.append(key)
        if quarantine and _quarantine(
            cache.path_for(key), Path(cache_root) / QUARANTINE_DIR
        ):
            report.quarantined += 1
    return report


# ----------------------------------------------------------------------
# The service job journal (jobs.jsonl + rotated segments)


@dataclass
class JobsJournalScan:
    """What :func:`scan_jobs_journal` found across every rotation segment."""

    path: Optional[Path] = None
    segments: int = 0  # rotated segment files folded before the active one
    lines: int = 0
    torn: int = 0  # unparseable lines (interrupted writers)
    jobs: int = 0
    by_state: Dict[str, int] = field(default_factory=dict)
    #: RUNNING jobs with no process holding their lease — a scan runs
    #: against a stopped service, so every RUNNING job is an orphan that
    #: will be requeued (or dead-lettered) on the next replay.
    orphaned: List[str] = field(default_factory=list)
    #: ``(job id, error)`` for jobs parked in ``DEAD_LETTER``.
    dead_letters: List[Tuple[str, str]] = field(default_factory=list)
    requeues: int = 0  # total requeues across all jobs


@dataclass
class JobsJournalCompaction:
    """Before/after accounting for :func:`compact_jobs_journal`."""

    segments_before: int = 0
    lines_before: int = 0
    lines_after: int = 0
    torn: int = 0
    dropped: int = 0  # transition records whose submit line was lost
    compacted: bool = False  # False: journal missing or already one-line-per-job


def _jobs_journal_files(path: Path) -> Tuple[List[Path], Path]:
    """Rotated segments (in rotation order) plus the active file."""
    found = []
    for candidate in path.parent.glob(path.name + ".*"):
        suffix = candidate.name[len(path.name) + 1:]
        if suffix.isdigit():
            found.append((int(suffix), candidate))
    return [p for _, p in sorted(found)], path


def _fold_jobs_journal(path: Path):
    """Replay the job journal the way the queue does — last state wins —
    without importing :mod:`repro.service` (service imports resilience).

    Returns ``(jobs, keys, order, lines, torn)`` where ``jobs`` maps job
    id to its folded record, ``keys`` maps idempotency key to job id,
    and ``order`` lists ids in first-seen (submission) order.
    """
    segments, active = _jobs_journal_files(path)
    jobs: Dict[str, dict] = {}
    keys: Dict[str, str] = {}
    order: List[str] = []
    lines = torn = 0
    for source in segments + [active]:
        try:
            text = source.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            if not line.strip():
                continue
            lines += 1
            try:
                record = json.loads(line)
            except ValueError:
                torn += 1
                continue
            if not isinstance(record, dict) or not isinstance(record.get("id"), str):
                torn += 1
                continue
            job_id = record["id"]
            job = jobs.get(job_id)
            if job is None:
                job = {"id": job_id, "requeues": 0}
                jobs[job_id] = job
                order.append(job_id)
            if isinstance(record.get("spec"), dict):
                job["spec"] = record["spec"]
            if isinstance(record.get("seq"), int):
                job["seq"] = record["seq"]
            if isinstance(record.get("state"), str):
                job["state"] = record["state"]
            if record.get("requeued"):
                job["requeues"] += 1
            if isinstance(record.get("requeues"), int) and not isinstance(
                record.get("requeues"), bool
            ):
                job["requeues"] = record["requeues"]
            if isinstance(record.get("idempotency_key"), str):
                job["idempotency_key"] = record["idempotency_key"]
                keys[record["idempotency_key"]] = job_id
            for name in ("error", "cells", "holes", "stats", "result", "failure"):
                if name in record:
                    job[name] = record[name]
    return jobs, keys, order, lines, torn


def scan_jobs_journal(path: Union[str, Path]) -> JobsJournalScan:
    """Read-only triage of a (stopped) service's job journal: every
    rotation segment is folded, so the report covers the full history."""
    path = Path(path)
    segments, _ = _jobs_journal_files(path)
    jobs, _, order, lines, torn = _fold_jobs_journal(path)
    scan = JobsJournalScan(
        path=path, segments=len(segments), lines=lines, torn=torn, jobs=len(jobs)
    )
    for job_id in order:
        job = jobs[job_id]
        state = job.get("state", "QUEUED")
        scan.by_state[state] = scan.by_state.get(state, 0) + 1
        scan.requeues += job.get("requeues", 0)
        if state == "RUNNING":
            scan.orphaned.append(job_id)
        elif state == "DEAD_LETTER":
            scan.dead_letters.append((job_id, job.get("error") or ""))
    return scan


def compact_jobs_journal(path: Union[str, Path]) -> JobsJournalCompaction:
    """Rewrite the job journal as one snapshot record per job and fold
    every rotation segment away.

    Each snapshot carries the job's folded final state, including a
    *numeric* ``requeues`` count (never the incremental ``requeued``
    flag), so replaying a compacted journal — or compacting twice —
    yields exactly the same requeue counts: no double-counting.  The
    rewrite is crash-safe: temp file + fsync + atomic rename onto the
    active journal *before* the segments are removed, so a crash
    mid-compaction leaves a journal whose replay still converges to the
    same state (the snapshot lines win over older segment lines).
    """
    path = Path(path)
    if not path.exists():
        return JobsJournalCompaction()
    segments, _ = _jobs_journal_files(path)
    jobs, _, order, lines, torn = _fold_jobs_journal(path)
    result = JobsJournalCompaction(
        segments_before=len(segments), lines_before=lines, torn=torn
    )
    snapshots = []
    for job_id in order:
        job = jobs[job_id]
        if "spec" not in job:
            result.dropped += 1  # transition lines for a lost submit
            continue
        job.setdefault("state", "QUEUED")
        snapshots.append(json.dumps(job, sort_keys=True))
    result.lines_after = len(snapshots)
    if not segments and torn == 0 and lines == len(snapshots):
        return result  # already one clean line per job
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            for line in snapshots:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return result
    for segment in segments:
        try:
            segment.unlink()
        except OSError:
            pass
    result.compacted = True
    return result
