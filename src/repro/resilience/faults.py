"""Deterministic, seeded fault injection for the execution engine.

A benchmarking harness that cannot survive failure cannot be trusted at
production scale: a single crashed worker, hung invocation, or torn
result file must not cost a thousand-cell sweep.  But resilience code
that is never exercised is resilience theatre — so this module makes
failure *reproducible*.  Every fault decision is a pure function of
``(seed, cell_key, attempt)``: run the same chaos sweep twice and the
identical fault sequence fires both times, which is what lets tests pin
"a faulted run with retries converges to bit-identical results".

Four fault kinds, each standing in for a real-JVM harness failure
(see DESIGN.md for the mapping):

- ``transient`` — a spurious exception from the invocation (flaky
  infrastructure: a lost perf-counter read, a dropped connection);
- ``crash`` — the forked JVM process dying abruptly (OOM-killed by the
  kernel, segfault in native code), surfaced as :class:`WorkerCrash`
  raised from the worker;
- ``hang`` — an invocation that stops making progress (deadlocked
  barrier, livelocked GC); injected as a real ``time.sleep`` so per-cell
  timeouts have something true to measure;
- ``corrupt`` — a torn result file (power loss mid-write, disk rot):
  the freshly-written cache entry is garbled *after* the write, so the
  next read exercises the corruption-detection path.

Injection is off by default via :class:`NullInjector` (mirroring the
flight recorder's ``NullRecorder``): the engine's fast path pays one
``enabled`` check and nothing else.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

#: Execution-fault kinds, in decision order (the order partitions the
#: unit interval, so it is part of the determinism contract).
EXECUTION_FAULTS: Tuple[str, ...] = ("transient", "crash", "hang")

#: All injectable fault kinds, execution faults plus cache corruption.
FAULT_KINDS: Tuple[str, ...] = EXECUTION_FAULTS + ("corrupt",)


class InjectedFault(Exception):
    """Base of all injector-raised failures (always retry-worthy)."""


class TransientFault(InjectedFault):
    """A spurious, self-healing failure: succeeds on retry."""


class WorkerCrash(InjectedFault):
    """The worker executing a cell died abruptly (stands in for a forked
    JVM being OOM-killed or segfaulting under the harness)."""


def _uniform(*parts: object) -> float:
    """A uniform [0, 1) draw that is a pure function of its labels.

    Stable across processes and Python versions (sha256, not ``hash``),
    which is what makes chaos runs replayable bit-for-bit.
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2.0 ** 64


@dataclass(frozen=True)
class FaultSpec:
    """Per-kind fault probabilities plus the seed that fixes the draw.

    Probabilities are per *attempt* for execution faults (a retried cell
    rolls fresh dice) and per *write* for ``corrupt``.  ``hang_s`` is how
    long an injected hang sleeps — keep it above the cell timeout to
    exercise timeout recovery, below it to inject mere slowness.
    """

    seed: int = 0
    transient: float = 0.0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} fault rate must be in [0, 1], got {rate}")
        if self.transient + self.crash + self.hang > 1.0:
            raise ValueError("execution fault rates cannot sum past 1.0")
        if self.hang_s < 0:
            raise ValueError("hang_s cannot be negative")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, hang_s: float = 0.25) -> "FaultSpec":
        """Split one overall chaos rate evenly across every fault kind —
        what ``--chaos-rate`` builds."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {rate}")
        share = rate / len(FAULT_KINDS)
        return cls(
            seed=seed,
            transient=share,
            crash=share,
            hang=share,
            corrupt=share,
            hang_s=hang_s,
        )

    @property
    def active(self) -> bool:
        """True when any kind can actually fire."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)


class NullInjector:
    """The zero-cost default: never injects anything.

    ``enabled`` is False so the engine can skip the chaos machinery with
    a single attribute check — the same pattern as
    :class:`repro.observability.NullRecorder`.
    """

    enabled: bool = False
    spec: Optional[FaultSpec] = None

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The execution fault to inject for this attempt (always None)."""
        return None

    def corrupts(self, key: str) -> bool:
        """Whether to garble this key's freshly-written cache entry."""
        return False

    def fire(self, kind: str, key: str, attempt: int) -> None:
        """Carry out an injected execution fault (no-op here)."""


class FaultInjector(NullInjector):
    """Seeded chaos: decides and carries out faults deterministically.

    ``decide`` partitions one uniform draw per ``(seed, key, attempt)``
    into kind intervals sized by the spec's rates, so the fault sequence
    for a sweep is a pure function of the chaos seed and the cell keys —
    independent of scheduling, parallelism, and wall clock.
    """

    enabled = True

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """Which execution fault (if any) fires for this attempt."""
        u = _uniform(self.spec.seed, key, attempt)
        edge = 0.0
        for kind in EXECUTION_FAULTS:
            edge += getattr(self.spec, kind)
            if u < edge:
                return kind
        return None

    def corrupts(self, key: str) -> bool:
        """Whether this key's cache entry gets torn after being written.

        Drawn from a separate label so corruption is independent of the
        execution-fault stream for the same cell.
        """
        return _uniform(self.spec.seed, key, "corrupt") < self.spec.corrupt

    def fire(self, kind: str, key: str, attempt: int) -> None:
        """Carry out one injected execution fault.

        Runs *inside* the worker (in-process or pool child), before the
        simulation starts, so a fault never perturbs a result — it only
        replaces or delays it.  ``transient`` and ``crash`` raise;
        ``hang`` sleeps ``hang_s`` of real time and then lets the cell
        proceed, which a per-cell timeout converts into a retry.

        A hang honours the timeout runner's abandonment flag (the
        ``abandoned`` event :func:`repro.harness.engine._call_with_timeout`
        pins to the attempt thread): once the parent has charged the
        timeout and moved on, the sleep wakes immediately so the
        abandoned thread exits instead of leaking for the rest of
        ``hang_s``.
        """
        if kind == "transient":
            raise TransientFault(
                f"injected transient fault (cell {key[:12]}, attempt {attempt})"
            )
        if kind == "crash":
            raise WorkerCrash(
                f"injected worker crash (cell {key[:12]}, attempt {attempt})"
            )
        if kind == "hang":
            abandoned = getattr(threading.current_thread(), "abandoned", None)
            if abandoned is None:
                time.sleep(self.spec.hang_s)
            else:
                abandoned.wait(self.spec.hang_s)
            return
        raise ValueError(f"unknown fault kind {kind!r}")


# ----------------------------------------------------------------------
# Service-level faults (the `chopin chaos --service` drill)

#: Service-fault kinds: failures of the *daemon*, not of a cell.
SERVICE_FAULTS: Tuple[str, ...] = (
    "worker_death",
    "heartbeat_stall",
    "torn_append",
    "shard_corrupt",
)


class ServiceWorkerDeath(BaseException):
    """An injected death of a service worker thread *mid-job*.

    Deliberately a ``BaseException``: the worker's own crash-containment
    ``except Exception`` must not catch it — a dead thread marks
    nothing, and the job it was holding is recovered by the lease
    reaper, which is exactly the path the drill proves.
    """


@dataclass(frozen=True)
class ServiceFaultSpec:
    """Per-kind service-fault budgets plus the seed that fixes the draws.

    Unlike :class:`FaultSpec`, kinds here are *counts*, not
    probabilities: ``worker_death=1`` kills the worker exactly once per
    job (on its first execution), which is what makes the service drill
    deterministic — every armed fault is guaranteed to fire, and the
    seed only picks *where* (the mid-job cell index, the corrupted
    shard entries).
    """

    seed: int = 0
    worker_death: int = 0  # mid-job worker deaths per job
    heartbeat_stall: int = 0  # executions per job with a stalled lease
    torn_append: int = 0  # terminal journal appends torn, service-wide
    shard_corrupt: int = 0  # cache entries torn by pick_corrupt()

    def __post_init__(self) -> None:
        for kind in SERVICE_FAULTS:
            count = getattr(self, kind)
            if not isinstance(count, int) or count < 0:
                raise ValueError(
                    f"{kind} fault budget must be a non-negative integer, got {count!r}"
                )

    @property
    def active(self) -> bool:
        return any(getattr(self, kind) > 0 for kind in SERVICE_FAULTS)


class NullServiceInjector:
    """The zero-cost default: no service faults, ever."""

    enabled: bool = False
    spec: Optional[ServiceFaultSpec] = None

    def death_cell(self, job_id: str, total_cells: int) -> Optional[int]:
        """1-based cell count after which the worker dies (None = never)."""
        return None

    def stalls(self, job_id: str) -> bool:
        """Whether this execution's lease heartbeats stall mid-job."""
        return False

    def tears_append(self, record: dict) -> bool:
        """Whether to tear this journal append (crash mid-write)."""
        return False

    def pick_corrupt(self, paths: list) -> list:
        """Which of these cache-entry paths to tear (always none)."""
        return []


class ServiceFaultInjector(NullServiceInjector):
    """Seeded service chaos: every armed fault fires, the seed picks where.

    Budgets are tracked per ``(kind, label)`` — e.g. ``worker_death=2``
    kills a job's worker on its first two executions and then lets the
    third run to completion, which is how the drill walks a job to
    ``DEAD_LETTER`` at exactly ``max_requeues``.  ``death_points``
    records where each death fired so the drill can assert the warm
    re-run cached exactly those cells.
    """

    enabled = True

    def __init__(self, spec: ServiceFaultSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._spent: dict = {}
        self.death_points: dict = {}  # job id -> cells completed before death

    def _take(self, kind: str, label: str) -> bool:
        """Consume one unit of the ``(kind, label)`` budget if any is left."""
        budget = getattr(self.spec, kind)
        if budget <= 0:
            return False
        with self._lock:
            spent = self._spent.get((kind, label), 0)
            if spent >= budget:
                return False
            self._spent[(kind, label)] = spent + 1
            return True

    def death_cell(self, job_id: str, total_cells: int) -> Optional[int]:
        if total_cells < 1 or not self._take("worker_death", job_id):
            return None
        # Die strictly mid-job: after at least one cell has completed
        # (so the warm re-run has something to cache-hit) and no later
        # than the last cell's completion (so the job never finishes).
        point = 1 + int(
            _uniform(self.spec.seed, "worker_death", job_id) * total_cells
        ) % total_cells
        self.death_points[job_id] = point
        return point

    def stalls(self, job_id: str) -> bool:
        return self._take("heartbeat_stall", job_id)

    def tears_append(self, record: dict) -> bool:
        # Only terminal-transition records are worth tearing: they carry
        # the result payload, so losing one forces the restarted service
        # to re-run the job — warm — which is the recovery path under test.
        if "spec" in record or record.get("state") not in (
            "DONE", "PARTIAL", "FAILED",
        ):
            return False
        return self._take("torn_append", "journal")

    def pick_corrupt(self, paths: list) -> list:
        """A seeded, order-independent sample of cache entries to tear."""
        if self.spec.shard_corrupt <= 0 or not paths:
            return []
        ranked = sorted(
            paths, key=lambda p: _uniform(self.spec.seed, "shard_corrupt", Path(p).name)
        )
        return ranked[: self.spec.shard_corrupt]


def corrupt_entry(path: Union[str, Path]) -> bool:
    """Tear a cache entry the way a crashed writer would: truncate it
    mid-stream and flip its leading bytes.  Returns False when the entry
    does not exist (nothing to corrupt)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return False
    torn = b"\x00CHAOS\x00" + raw[: max(1, len(raw) // 2)]
    try:
        path.write_bytes(torn)
    except OSError:
        return False
    return True
