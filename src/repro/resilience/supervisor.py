"""Run supervision: deadline budgets, circuit breakers, graceful shutdown.

The resilience layer (retries, checkpoints, chaos) makes a sweep
*restartable*; this module makes it *survivable*.  A production-scale
run — the paper's 5-collector × 22-workload × 6-heap-factor matrix — has
three failure modes the retry policy alone cannot answer:

- **running out of wall clock**: a SLURM allocation or CI job has a hard
  time limit, and a sweep that is killed at the limit loses the cells it
  was half way through.  The :class:`Supervisor`'s *deadline budget*
  fits an EWMA cost model (:class:`CostModel`, keyed by
  ``workload × collector``) to completed cells and refuses to start a
  cell that cannot finish before the deadline — the cell becomes a typed
  ``Hole(reason="budget")`` a later ``--resume`` run can fill, instead
  of half-run work the limit would destroy;
- **permanently broken families**: a JVM build that segfaults on one
  workload fails every invocation of every heap size, and burning the
  full retry/backoff schedule on each proves nothing new.  The
  per-family :class:`CircuitBreaker` opens after ``threshold``
  consecutive cells of a family give up, fast-fails the family's
  remaining cells in O(1) (``Hole(reason="breaker")``, zero attempts,
  zero backoff), and *half-open probes* let a recovered family close the
  breaker again;
- **interruption**: the first SIGINT/SIGTERM must not tear the journal
  mid-append.  :meth:`Supervisor.install` converts the first signal into
  a *drain* — in-flight cells finish, everything completed is journalled
  (fsync'd) and cached, pending cells become ``Hole(reason="drained")``,
  and a one-line resume hint is printed — while a second signal
  hard-aborts for the impatient.

The supervision contract mirrors the recorder's and the injector's:
supervision decides *whether* a cell runs, never *how* — a cell that
does run produces bit-identical results with or without a supervisor,
and an unconstrained supervisor (no budget, breaker never trips, no
signal) changes nothing at all.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Tuple, Union

#: Hole reasons the supervisor can assign (the engine adds ``gave_up``
#: and ``timeout`` for cells that ran and failed).
SUPERVISED_REASONS: Tuple[str, ...] = ("budget", "breaker", "drained")

#: Circuit-breaker states, in lifecycle order.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CostModel:
    """EWMA per-family cost model fitted from completed cells.

    ``observe`` folds one completed cell's wall-clock cost into the
    family's exponentially-weighted moving average; ``estimate`` answers
    "how long will the next cell of this family take?".  A family with
    no history borrows the mean over every known family (the sweep's
    early cells inform its late ones), and a model with no history at
    all answers ``None`` — the budget then admits the cell, because
    refusing work on zero evidence would deadlock a fresh sweep.

    Thread-safe: ``chopin serve`` shares one model across every worker
    thread's supervisor, so ``observe``'s read-modify-write of the EWMA
    dict (and every read of it) takes an internal lock.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: Dict[Tuple[str, str], float] = {}
        self._lock = threading.Lock()

    def observe(self, family: Tuple[str, str], seconds: float) -> None:
        """Fold one completed cell's cost into the family's average."""
        if seconds < 0:
            raise ValueError("cell costs cannot be negative")
        with self._lock:
            previous = self._ewma.get(family)
            if previous is None:
                self._ewma[family] = seconds
            else:
                self._ewma[family] = (
                    self.alpha * seconds + (1.0 - self.alpha) * previous
                )

    def estimate(self, family: Tuple[str, str]) -> Optional[float]:
        """Expected cost of the family's next cell (None: no data yet)."""
        with self._lock:
            known = self._ewma.get(family)
            if known is not None:
                return known
            if not self._ewma:
                return None
            return sum(self._ewma.values()) / len(self._ewma)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ewma)

    # ------------------------------------------------------------------
    # Persistence: warm starts for repeated sweeps and the planner.

    def to_json(self) -> Dict[str, object]:
        """A JSON-stable snapshot: alpha plus sorted family triples.

        Families are ``[workload, collector, seconds]`` triples rather
        than joined strings, so workload names containing any separator
        round-trip unharmed.
        """
        with self._lock:
            families = sorted(self._ewma.items())
        return {
            "alpha": self.alpha,
            "families": [
                [workload, collector, seconds]
                for (workload, collector), seconds in families
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CostModel":
        """Rebuild a model :meth:`to_json` snapshotted."""
        if not isinstance(payload, dict):
            raise ValueError(f"cost model snapshot must be an object, got {type(payload).__name__}")
        model = cls(alpha=float(payload.get("alpha", 0.3)))
        families = payload.get("families", [])
        if not isinstance(families, list):
            raise ValueError("cost model families must be a list of [workload, collector, seconds]")
        for entry in families:
            if not (isinstance(entry, (list, tuple)) and len(entry) == 3):
                raise ValueError(f"malformed cost model family entry: {entry!r}")
            workload, collector, seconds = entry
            seconds = float(seconds)
            if seconds < 0:
                raise ValueError(f"cost model family {workload}/{collector} has negative cost")
            model._ewma[(str(workload), str(collector))] = seconds
        return model

    def save(self, path: Union[str, Path]) -> None:
        """Persist the model so the next run starts warm (atomic write)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        tmp.replace(path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CostModel":
        """Load a saved model; errors name the offending file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ValueError(f"{path}: cannot read cost model ({exc})") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: cost model is not valid JSON ({exc})") from exc
        try:
            return cls.from_json(payload)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc


class CircuitBreaker:
    """One family's breaker: closed → open → half-open → closed.

    Counts *consecutive* cells of the family that gave up (exhausted
    their retry budget or hit a permanent error); at ``threshold`` the
    breaker opens and every subsequent cell is skipped in O(1) until
    ``probe_after`` cells have been skipped — then the breaker goes
    half-open and admits exactly one probe.  A successful probe closes
    the breaker (the family recovered: a transient infrastructure
    problem cleared); a failed probe re-opens it and the skip counter
    restarts.  Any success while closed resets the consecutive count.
    """

    def __init__(self, threshold: int, probe_after: int = 8) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be at least 1, got {threshold}")
        if probe_after < 1:
            raise ValueError(f"breaker probe_after must be at least 1, got {probe_after}")
        self.threshold = threshold
        self.probe_after = probe_after
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.skipped = 0  # skips since the breaker last opened
        self.opened_count = 0  # how many times this breaker has opened

    def admit(self) -> bool:
        """Whether the family's next cell may run.

        In the open state this both answers and *counts* — after
        ``probe_after`` refusals the breaker moves to half-open and the
        next call admits a probe.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN:
            # One probe at a time: further cells keep fast-failing until
            # the in-flight probe reports back.
            return False
        self.skipped += 1
        if self.skipped >= self.probe_after:
            self.state = BREAKER_HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        """A cell of the family completed (including a cached OOM)."""
        self.consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self.state = BREAKER_CLOSED  # the probe (or a racer) recovered
            self.skipped = 0

    def record_failure(self) -> bool:
        """A cell of the family gave up.  Returns True when this failure
        newly opened the breaker (the caller emits ``BreakerOpened``)."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN  # failed probe: back to fast-failing
            self.skipped = 0
            return False
        self.consecutive_failures += 1
        if self.state == BREAKER_CLOSED and self.consecutive_failures >= self.threshold:
            self.state = BREAKER_OPEN
            self.skipped = 0
            self.opened_count += 1
            return True
        return False


class Supervisor:
    """Wall-clock budget, per-family breakers, and graceful shutdown for
    one sweep.

    Attach to an :class:`~repro.harness.engine.ExecutionEngine` (the
    ``supervisor=`` collaborator) and the engine consults
    :meth:`admit` before starting each cache-missed cell; completed and
    failed cells report back through :meth:`observe` and
    :meth:`record_failure`.  All three supervision axes are optional —
    a ``Supervisor()`` with no budget and no breaker threshold admits
    everything and the sweep is bit-identical to an unsupervised one.

    The deadline clock starts at the first :meth:`admit` call (not at
    construction), so building the supervisor early costs nothing.
    ``clock`` is injectable for tests; production uses
    ``time.monotonic``.
    """

    def __init__(
        self,
        budget_s: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        probe_after: int = 8,
        ewma_alpha: float = 0.3,
        resume_hint: Optional[str] = None,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"budget must be a positive number of seconds, got {budget_s}")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError(
                f"breaker threshold must be a positive integer, got {breaker_threshold}"
            )
        if probe_after < 1:
            raise ValueError(f"probe_after must be at least 1, got {probe_after}")
        self.budget_s = budget_s
        self.breaker_threshold = breaker_threshold
        self.probe_after = probe_after
        # A shared (typically CostModel.load-ed) model lets repeated
        # sweeps and the adaptive planner start warm; the default is the
        # classic per-sweep blank slate.
        self.model = cost_model if cost_model is not None else CostModel(alpha=ewma_alpha)
        self.breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self.resume_hint = resume_hint
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.draining = False
        self.drain_signal = ""  # name of the signal that started the drain
        self._started_at: Optional[float] = None
        self._deadline: Optional[float] = None
        self._installed: List[Tuple[int, object]] = []
        self._lock = threading.Lock()
        #: Supervision incidents for the flight recorder, appended in
        #: decision order: ("budget", family, estimate, remaining),
        #: ("breaker", family, failures), ("drain", signal_name).
        self.incidents: List[tuple] = []

    # ------------------------------------------------------------------
    # Admission control (the engine calls these)

    @property
    def active(self) -> bool:
        """True when the supervisor can actually refuse work."""
        return self.budget_s is not None or self.breaker_threshold is not None

    def start(self) -> None:
        """Start the deadline clock (idempotent; implied by ``admit``)."""
        if self._started_at is None:
            self._started_at = self.clock()
            if self.budget_s is not None:
                self._deadline = self._started_at + self.budget_s

    def remaining_s(self) -> Optional[float]:
        """Wall-clock seconds left in the budget (None: no budget)."""
        if self._deadline is None:
            return None
        return self._deadline - self.clock()

    def breaker_for(self, family: Tuple[str, str]) -> Optional[CircuitBreaker]:
        """The family's breaker, created on first use (None: breakers off)."""
        if self.breaker_threshold is None:
            return None
        breaker = self.breakers.get(family)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold, self.probe_after)
            self.breakers[family] = breaker
        return breaker

    def admit(self, workload: str, collector: str) -> Optional[Tuple[str, str]]:
        """Decide whether a pending cell may start.

        Returns ``None`` to run the cell, or ``(reason, detail)`` with
        reason one of :data:`SUPERVISED_REASONS` to skip it.  Checked in
        severity order: a drain refuses everything, an open breaker
        refuses its family, and the budget refuses cells the cost model
        says cannot finish.
        """
        self.start()
        family = (workload, collector)
        if self.draining:
            detail = f"drained by {self.drain_signal or 'drain request'}"
            return ("drained", detail)
        breaker = self.breaker_for(family)
        if breaker is not None and not breaker.admit():
            return (
                "breaker",
                f"circuit breaker open for {workload}/{collector} after "
                f"{breaker.consecutive_failures} consecutive failures",
            )
        remaining = self.remaining_s()
        if remaining is not None:
            estimate = self.model.estimate(family)
            if remaining <= 0.0 or (estimate is not None and estimate > remaining):
                shown = 0.0 if estimate is None else estimate
                self.incidents.append(("budget", family, shown, max(0.0, remaining)))
                return (
                    "budget",
                    f"deadline budget exhausted for {workload}/{collector} "
                    f"(estimate {shown:.3f}s > {max(0.0, remaining):.3f}s remaining)",
                )
        return None

    def observe(self, workload: str, collector: str, seconds: float) -> None:
        """A cell of the family completed: feed the cost model and close
        the loop on any half-open breaker."""
        family = (workload, collector)
        self.model.observe(family, seconds)
        breaker = self.breakers.get(family)
        if breaker is not None:
            breaker.record_success()

    def record_failure(self, workload: str, collector: str) -> bool:
        """A cell of the family gave up.  Returns True when the family's
        breaker newly opened (the engine emits ``BreakerOpened``)."""
        family = (workload, collector)
        breaker = self.breaker_for(family)
        if breaker is None:
            return False
        opened = breaker.record_failure()
        if opened:
            self.incidents.append(("breaker", family, breaker.consecutive_failures))
        return opened

    # ------------------------------------------------------------------
    # Graceful shutdown

    def request_drain(self, reason: str = "drain request") -> None:
        """Stop admitting new cells; in-flight cells finish and are
        journalled.  Idempotent — also what the first SIGINT/SIGTERM
        calls."""
        with self._lock:
            if self.draining:
                return
            self.draining = True
            self.drain_signal = reason
            self.incidents.append(("drain", reason))

    def drain_finished(self, drained: int) -> None:
        """Called by the engine after a drained batch has flushed: print
        the one-line resume hint."""
        hint = self.resume_hint or "re-run with --cache-dir/--resume to continue"
        print(
            f"chopin: drained cleanly ({drained} pending cell"
            f"{'s' if drained != 1 else ''} left for later); {hint}",
            file=self.stream,
        )

    def _handle_signal(self, signum: int, frame: object) -> None:
        name = signal.Signals(signum).name if hasattr(signal, "Signals") else str(signum)
        if self.draining:
            # Second signal: the user means it.  Restore default handlers
            # so a third signal reaches the OS, and abort hard.
            self.uninstall()
            raise KeyboardInterrupt(f"hard abort on second {name}")
        self.request_drain(name)
        print(
            f"chopin: {name} received — draining in-flight cells "
            f"(interrupt again to abort immediately)",
            file=self.stream,
        )

    def install(self) -> "Supervisor":
        """Install SIGINT/SIGTERM handlers (main thread only; returns
        self so it chains).  First signal drains, second hard-aborts."""
        if threading.current_thread() is not threading.main_thread():
            return self  # signal.signal would raise; supervision still works
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(signum, self._handle_signal)
            self._installed.append((signum, previous))
        return self

    def uninstall(self) -> None:
        """Restore the signal handlers ``install`` displaced."""
        while self._installed:
            signum, previous = self._installed.pop()
            signal.signal(signum, previous)

    def __enter__(self) -> "Supervisor":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
