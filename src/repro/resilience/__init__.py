"""repro.resilience — fault injection, retries, and checkpointed sweeps.

The execution engine's answer to failure at production scale, in three
parts that compose:

- :mod:`.faults` — a deterministic, seeded chaos injector
  (:class:`FaultInjector`) whose fault sequence is a pure function of
  ``(seed, cell_key, attempt)``, plus the zero-cost
  :class:`NullInjector` default;
- :mod:`.retry` — the :class:`RetryPolicy` (per-cell timeouts, bounded
  exponential backoff with deterministic jitter) and the
  transient-vs-permanent taxonomy (:func:`classify`);
- :mod:`.checkpoint` — the append-only :class:`CheckpointJournal` that
  makes interrupted sweeps resumable on top of the result cache;
- :mod:`.supervisor` — the :class:`Supervisor` that wraps a whole sweep:
  wall-clock deadline budgets (EWMA cost model), per-family circuit
  breakers with half-open probes, and graceful SIGINT/SIGTERM drains;
- :mod:`.doctor` — cache/journal self-healing behind ``chopin doctor``:
  quarantine corrupt/stale/misplaced cache entries, compact the
  checkpoint journal, re-verify sampled cells against recomputation.

Design contract, mirrored from the flight recorder: resilience is
*observational about results*.  An injected fault replaces or delays an
attempt but never perturbs a successful simulation, so a chaos run that
converges produces bit-identical results to a fault-free run — pinned by
tests, and checked in CI by the chaos smoke job.
"""

from repro.resilience.checkpoint import CheckpointJournal
from repro.resilience.doctor import (
    CacheScan,
    JobsJournalCompaction,
    JobsJournalScan,
    JournalCompaction,
    VerifyReport,
    compact_jobs_journal,
    compact_journal,
    scan_cache,
    scan_jobs_journal,
    verify_cells,
)
from repro.resilience.faults import (
    EXECUTION_FAULTS,
    FAULT_KINDS,
    SERVICE_FAULTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    NullInjector,
    NullServiceInjector,
    ServiceFaultInjector,
    ServiceFaultSpec,
    ServiceWorkerDeath,
    TransientFault,
    WorkerCrash,
    corrupt_entry,
)
from repro.resilience.retry import (
    TRANSIENT_ERRORS,
    CellExecutionError,
    CellTimeout,
    RetryPolicy,
    classify,
)
from repro.resilience.supervisor import (
    SUPERVISED_REASONS,
    CircuitBreaker,
    CostModel,
    Supervisor,
)

__all__ = [
    "CacheScan",
    "CellExecutionError",
    "CellTimeout",
    "CheckpointJournal",
    "CircuitBreaker",
    "CostModel",
    "EXECUTION_FAULTS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "JobsJournalCompaction",
    "JobsJournalScan",
    "JournalCompaction",
    "NullInjector",
    "NullServiceInjector",
    "RetryPolicy",
    "SERVICE_FAULTS",
    "SUPERVISED_REASONS",
    "ServiceFaultInjector",
    "ServiceFaultSpec",
    "ServiceWorkerDeath",
    "Supervisor",
    "TRANSIENT_ERRORS",
    "TransientFault",
    "VerifyReport",
    "WorkerCrash",
    "classify",
    "compact_jobs_journal",
    "compact_journal",
    "corrupt_entry",
    "scan_cache",
    "scan_jobs_journal",
    "verify_cells",
]
