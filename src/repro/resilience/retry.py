"""Retry policy: timeouts, bounded backoff, and the error taxonomy.

The many-invocation methodology multiplies every flake by the grid size,
so the engine needs a principled answer to "this cell failed — now
what?".  This module supplies it:

- a **taxonomy**: :func:`classify` sorts failures into ``transient``
  (retry-worthy: injected faults, worker crashes, timeouts, I/O flakes)
  and ``permanent`` (retrying cannot help).  ``OutOfMemoryError`` is
  deliberately *not* an error here at all — the simulator's OOM is a
  legitimate experimental outcome that the engine caches as a negative
  result and never retries;
- a **schedule**: bounded exponential backoff with *deterministic*
  jitter.  The jitter factor is a pure function of ``(key, attempt)``,
  so two cells that fail simultaneously still decorrelate their retries
  (the thundering-herd fix) without introducing a wall-clock RNG that
  would break replayability;
- a **budget**: ``retries`` bounds attempts per cell and
  ``cell_timeout_s`` bounds each attempt's wall time, converting hangs
  into :class:`CellTimeout` failures the schedule can handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.resilience.faults import InjectedFault, _uniform


class CellTimeout(Exception):
    """An attempt exceeded the per-cell timeout (a hung invocation)."""


class CellExecutionError(RuntimeError):
    """A cell failed every attempt its retry budget allowed.

    Raised by the engine in strict (non-partial) mode; carries enough to
    debug the hole without re-running the sweep.
    """

    def __init__(self, key: str, attempts: int, last_error: str) -> None:
        super().__init__(
            f"cell {key[:12]} failed after {attempts} attempt(s): {last_error}"
        )
        self.key = key
        self.attempts = attempts
        self.last_error = last_error


#: Failure types worth retrying: injected faults (transient, crash),
#: timeouts, and the OS-level flakes a real fork/exec harness sees.
TRANSIENT_ERRORS = (InjectedFault, CellTimeout, ConnectionError, BrokenPipeError)


def classify(error: BaseException) -> str:
    """``"transient"`` (retry) or ``"permanent"`` (give up) for a failure.

    Anything not positively known to be transient is permanent: retrying
    a deterministic bug would burn the retry budget re-proving it.
    """
    return "transient" if isinstance(error, TRANSIENT_ERRORS) else "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, per-attempt timeout, backoff shape.

    The default policy (``retries=0``, no timeout) is the engine's
    historical behaviour — one attempt, wait forever — so constructing
    an engine without thinking about resilience changes nothing.
    """

    retries: int = 0
    cell_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries cannot be negative")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell timeout must be positive (or None for no limit)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times cannot be negative")

    @property
    def max_attempts(self) -> int:
        """Total attempts per cell: the first try plus the retries."""
        return self.retries + 1

    @property
    def active(self) -> bool:
        """True when the policy differs from fire-once-wait-forever."""
        return self.retries > 0 or self.cell_timeout_s is not None

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``attempt`` (0-based) of cell ``key``.

        ``min(cap, base * 2^attempt)`` scaled into ``[0.5, 1.0)`` by a
        jitter factor derived from ``(key, attempt)`` — deterministic,
        but decorrelated across cells.
        """
        if attempt < 0:
            raise ValueError(f"attempt numbers are 0-based, got {attempt}")
        raw = min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))
        if not self.jitter:
            return raw
        return raw * (0.5 + 0.5 * _uniform("backoff", key, attempt))
