"""The 22 DaCapo Chopin workload models and the request-replay engine."""
