"""The 22 DaCapo Chopin workload models.

This module is the single place where the paper's published nominal
statistics are turned into simulator parameters.  Each derivation is
documented next to the code that performs it, so the provenance of every
model parameter is auditable.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.core.units import mb_per_s_from_bytes_per_us
from repro.jvm.barriers import WorkloadOperationRates
from repro.jvm.environment import EnvironmentSensitivity
from repro.jvm.objects import ObjectSizeDistribution
from repro.workloads import nominal_data
from repro.workloads.spec import RequestProfile, WorkloadSpec

#: Workload input sizes: (nominal-minheap metric, execution-time multiplier
#: relative to the default size).  The execution multipliers are model
#: choices — the paper publishes minimum heaps per size (GMS/GMD/GML/GMV)
#: but not runtimes; larger inputs process proportionally more data.
SIZES = {
    "small": ("GMS", 0.3),
    "default": ("GMD", 1.0),
    "large": ("GML", 4.0),
    "vlarge": ("GMV", 12.0),
}

#: Fraction of the nominal minimum heap (GMD) occupied by the long-lived
#: live set.  The remainder of GMD is the young-generation headroom the
#: minimum-heap measurement necessarily includes.
LIVE_FRACTION_OF_MINHEAP = 0.80

#: Request-stream configuration for the nine latency-sensitive workloads:
#: (event count, worker threads, log-normal service-time sigma).  Counts
#: follow the paper where stated (h2: "100000 requests", Figure 6) and the
#: percentile range of each workload's latency figures otherwise.
_REQUEST_PROFILES: Dict[str, Tuple[int, int, float]] = {
    "cassandra": (100_000, 32, 0.85),
    "h2": (100_000, 24, 0.86),
    "jme": (4_200, 1, 0.25),  # frame renders, inherently sequential
    "kafka": (100_000, 16, 0.80),
    "lusearch": (100_000, 32, 0.90),
    "spring": (30_000, 16, 0.80),
    "tomcat": (50_000, 32, 0.80),
    "tradebeans": (20_000, 16, 0.80),
    "tradesoap": (20_000, 16, 0.80),
}

_DESCRIPTIONS: Dict[str, str] = {
    "avrora": "AVR microcontroller simulation with fine-grained thread concurrency",
    "batik": "Apache Batik SVG rendering",
    "biojava": "BioJava physico-chemical analysis of protein sequences",
    "cassandra": "YCSB over the Apache Cassandra NoSQL database",
    "eclipse": "Eclipse IDE performance tests",
    "fop": "Apache FOP XSL-FO to PDF rendering",
    "graphchi": "GraphChi ALS matrix factorization on the Netflix dataset",
    "h2": "TPC-C-like transactions over the in-memory H2 database",
    "h2o": "H2O machine learning over the citibike trip dataset",
    "jme": "jMonkeyEngine 3-D frame rendering",
    "jython": "Python benchmark on the Jython interpreter",
    "kafka": "Apache Kafka publish-subscribe messaging",
    "luindex": "Apache Lucene index construction",
    "lusearch": "Apache Lucene search requests",
    "pmd": "PMD static analysis of a source-code corpus",
    "spring": "Spring Boot petclinic microservices",
    "sunflow": "Sunflow photorealistic ray-traced rendering",
    "tomcat": "Apache Tomcat servlet requests",
    "tradebeans": "DayTrader via EJB beans",
    "tradesoap": "DayTrader via SOAP web services",
    "xalan": "Xalan XSLT transformation of XML documents",
    "zxing": "ZXing barcode recognition",
}


def _clip(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def _derive_survival_rate(gca: float) -> float:
    """Young-generation survival from GCA (post-GC heap as % of min heap).

    A workload whose post-GC heap sits well above its minimum heap carries
    more medium-lived data through collections; GCA is the paper's measure
    of exactly that.  The linear map keeps survival in the plausible
    nursery-survival band (6–22 %).
    """
    return _clip(0.06 + 0.0009 * gca, 0.06, 0.22)


def _derive_promotion_fraction(gto: float) -> float:
    """Promotion from GTO (memory turnover, total alloc / min heap).

    High-turnover workloads recycle nearly everything young (little
    promotion); low-turnover workloads tenure a larger share.
    """
    return _clip(80.0 / max(gto, 1.0), 0.05, 0.35)


def _build_spec(name: str, size: str = "default") -> WorkloadSpec:
    stats = nominal_data.stats_for(name)

    def required(metric: str) -> float:
        v = stats[metric]
        if v is None:
            raise ValueError(f"{name}: metric {metric} required to build spec")
        return float(v)

    if size not in SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(SIZES)}")
    size_metric, time_multiplier = SIZES[size]
    if stats[size_metric] is None:
        raise ValueError(f"{name} has no {size!r} size configuration ({size_metric} unavailable)")

    gmd = required("GMD")
    size_minheap = float(stats[size_metric])
    # Uncompressed-pointer footprint scales with the size's minimum heap.
    gmu_scaled = max(required("GMU") * size_minheap / gmd, size_minheap)
    sizes = None
    if stats["AOA"] is not None:
        sizes = ObjectSizeDistribution(
            average=float(stats["AOA"]),
            p90=float(stats["AOL"]),
            median=float(stats["AOM"]),
            p10=float(stats["AOS"]),
        )

    requests = None
    if name in _REQUEST_PROFILES:
        count, workers, sigma = _REQUEST_PROFILES[name]
        scaled_count = max(64, int(count * time_multiplier))
        requests = RequestProfile(count=scaled_count, workers=workers, service_sigma=sigma)

    rates = None
    if stats["BPF"] is not None:
        rates = WorkloadOperationRates(
            putfield_per_us=float(stats["BPF"]),
            aastore_per_us=float(stats["BAS"]),
            getfield_per_us=float(stats["BGF"]),
            aaload_per_us=float(stats["BAL"]),
        )

    sensitivities = EnvironmentSensitivity(
        pms=required("PMS"),
        pls=required("PLS"),
        pfs=required("PFS"),
        pcc=required("PCC"),
        pin=required("PIN"),
        uaa=required("UAA"),
        uai=required("UAI"),
    )

    return WorkloadSpec(
        name=name,
        description=_DESCRIPTIONS[name],
        execution_time_s=max(required("PET"), 0.5) * time_multiplier,
        alloc_rate_mb_s=mb_per_s_from_bytes_per_us(required("ARA")),
        live_mb=LIVE_FRACTION_OF_MINHEAP * size_minheap,
        minheap_mb=size_minheap,
        minheap_nocomp_mb=gmu_scaled,
        # PPE is "speedup as percentage of ideal speedup for 32 threads";
        # the product is the average number of busy hardware threads.
        cpu_cores=max(1.0, 32.0 * required("PPE") / 100.0),
        survival_rate=_derive_survival_rate(required("GCA")),
        promotion_fraction=_derive_promotion_fraction(required("GTO")),
        run_noise=_clip(required("PSD") / 100.0, 0.002, 0.13),
        # PIN (interpreter-only slowdown) bounds how much of the first
        # iteration is cold-code overhead.
        warmup_excess=_clip(0.10 + required("PIN") / 400.0, 0.10, 0.80),
        warmup_iterations=int(required("PWU")),
        leak_rate=required("GLK") / 100.0 / 10.0,
        object_sizes=sizes,
        sensitivities=sensitivities,
        operation_rates=rates,
        size=size,
        requests=requests,
        new_in_chopin=name in nominal_data.NEW_IN_CHOPIN,
    )


@lru_cache(maxsize=None)
def workload(name: str, size: str = "default") -> WorkloadSpec:
    """The workload model for ``name`` (cached; specs are immutable).

    ``size`` selects the input configuration: ``small``, ``default``,
    ``large``, or ``vlarge`` — not every workload ships every size (h2 is
    the only one with a 20 GB ``vlarge``), matching the suite.
    """
    if name not in nominal_data.BENCHMARK_STATS:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(nominal_data.BENCHMARK_NAMES)}"
        )
    return _build_spec(name, size)


def available_sizes(name: str) -> List[str]:
    """The input sizes available for ``name``."""
    stats = nominal_data.stats_for(name)
    return [size for size, (metric, _) in SIZES.items() if stats.get(metric) is not None]


def all_workloads() -> List[WorkloadSpec]:
    """All 22 workloads, sorted by name."""
    return [workload(name) for name in nominal_data.BENCHMARK_NAMES]


def latency_workloads() -> List[WorkloadSpec]:
    """The nine latency-sensitive workloads."""
    return [spec for spec in all_workloads() if spec.latency_sensitive]
