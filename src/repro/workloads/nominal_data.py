"""Published nominal statistics for the 22 DaCapo Chopin workloads.

These are the per-benchmark *values* from the paper's appendix tables
("Complete nominal statistics for <benchmark>"), keyed by the three-letter
metric acronyms of Table 1.  They serve two purposes:

1. They parameterize the workload models (allocation rate, minimum heaps,
   survival behaviour, threading, runtime) so the simulator exercises the
   GC machinery the way the real workload did.
2. They are the input to the nominal-statistics engine and the principal
   components analysis (Figure 4, Table 2), exactly as in the paper.

Seventeen benchmarks have complete published tables in the paper text we
work from.  Five (tomcat, tradebeans, tradesoap, xalan, zxing) fall in the
truncated tail: for those, the twelve most-determinant metrics come from
the fully published Table 2, and the remainder are synthesized consistently
with the paper's prose descriptions.  ``SYNTHESIZED`` records which
benchmarks contain synthesized values; sunflow's table is partially
truncated, so its tail metrics are synthesized too.

``None`` marks a metric that is unavailable for that benchmark (the paper:
"not every dimension is available or relevant to each benchmark";
tradebeans and tradesoap have the fewest at 35 — they lack the
bytecode-instrumentation metrics).
"""

from __future__ import annotations

from typing import Dict, Optional

Stats = Dict[str, Optional[float]]

#: Benchmarks whose records contain synthesized (not published) values.
SYNTHESIZED = frozenset({"sunflow", "tomcat", "tradebeans", "tradesoap", "xalan", "zxing"})

#: The eight workloads new in DaCapo Chopin.
NEW_IN_CHOPIN = frozenset(
    {"biojava", "cassandra", "graphchi", "h2o", "jme", "kafka", "spring", "tomcat"}
)

#: The nine latency-sensitive workloads (jme, spring, and seven other
#: request-based services — Section 4.4).
LATENCY_SENSITIVE = frozenset(
    {"cassandra", "h2", "jme", "kafka", "lusearch", "spring", "tomcat", "tradebeans", "tradesoap"}
)

BENCHMARK_STATS: Dict[str, Stats] = {
    "avrora": {
        "AOA": 34, "AOL": 32, "AOM": 32, "AOS": 24, "ARA": 56,
        "BAL": 31, "BAS": 0, "BEF": 5, "BGF": 692, "BPF": 206, "BUB": 33, "BUF": 4,
        "GCA": 80, "GCC": 551, "GCM": 80, "GCP": 1, "GLK": 0,
        "GMD": 5, "GML": 15, "GMS": 5, "GMU": 7, "GMV": None, "GSS": 18, "GTO": 33,
        "PCC": 83, "PCS": 7, "PET": 4, "PFS": 18, "PIN": 7, "PKP": 56,
        "PLS": 2, "PMS": 6, "PPE": 3, "PSD": 4, "PWU": 2,
        "UAA": 53, "UAI": -19, "UBM": 23, "UBP": 19, "UBR": 164, "UBS": 20,
        "UDC": 18, "UDT": 131, "UIP": 113, "ULL": 3398, "USB": 26, "USC": 7, "USF": 51,
    },
    "batik": {
        "AOA": 58, "AOL": 72, "AOM": 32, "AOS": 24, "ARA": 506,
        "BAL": 41, "BAS": 0, "BEF": 4, "BGF": 126, "BPF": 28, "BUB": 32, "BUF": 4,
        "GCA": 121, "GCC": 111, "GCM": 132, "GCP": 9, "GLK": 0,
        "GMD": 175, "GML": 1759, "GMS": 19, "GMU": 229, "GMV": None, "GSS": 40, "GTO": 3,
        "PCC": 306, "PCS": 24, "PET": 2, "PFS": 20, "PIN": 24, "PKP": 0,
        "PLS": 0, "PMS": 2, "PPE": 4, "PSD": 1, "PWU": 4,
        "UAA": 80, "UAI": 25, "UBM": 37, "UBP": 52, "UBR": 2388, "UBS": 55,
        "UDC": 4, "UDT": 50, "UIP": 228, "ULL": 1872, "USB": 46, "USC": 16, "USF": 10,
    },
    "biojava": {
        "AOA": 28, "AOL": 24, "AOM": 24, "AOS": 24, "ARA": 2041,
        "BAL": 0, "BAS": 0, "BEF": 28, "BGF": 171, "BPF": 2, "BUB": 18, "BUF": 2,
        "GCA": 106, "GCC": 2172, "GCM": 98, "GCP": 1, "GLK": 0,
        "GMD": 93, "GML": 1027, "GMS": 7, "GMU": 183, "GMV": 371, "GSS": 7107, "GTO": 102,
        "PCC": 224, "PCS": 106, "PET": 5, "PFS": 19, "PIN": 106, "PKP": 1,
        "PLS": 1, "PMS": 0, "PPE": 5, "PSD": 0, "PWU": 1,
        "UAA": 121, "UAI": 14, "UBM": 15, "UBP": 29, "UBR": 3487, "UBS": 33,
        "UDC": 2, "UDT": 30, "UIP": 476, "ULL": 1427, "USB": 19, "USC": 41, "USF": 6,
    },
    "cassandra": {
        "AOA": 40, "AOL": 56, "AOM": 32, "AOS": 24, "ARA": 890,
        "BAL": 9, "BAS": 1, "BEF": 3, "BGF": 314, "BPF": 57, "BUB": 114, "BUF": 18,
        "GCA": 103, "GCC": 659, "GCM": 101, "GCP": 1, "GLK": 46,
        "GMD": 174, "GML": 174, "GMS": 77, "GMU": 142, "GMV": None, "GSS": 14, "GTO": 34,
        "PCC": 60, "PCS": 31, "PET": 6, "PFS": 2, "PIN": 31, "PKP": 11,
        "PLS": 3, "PMS": 2, "PPE": 13, "PSD": 0, "PWU": 2,
        "UAA": 168, "UAI": -9, "UBM": 26, "UBP": 37, "UBR": 619, "UBS": 38,
        "UDC": 24, "UDT": 576, "UIP": 108, "ULL": 5719, "USB": 29, "USC": 92, "USF": 40,
    },
    "eclipse": {
        "AOA": 84, "AOL": 88, "AOM": 32, "AOS": 24, "ARA": 1043,
        "BAL": 0, "BAS": 0, "BEF": 29, "BGF": 0, "BPF": 0, "BUB": 1, "BUF": 0,
        "GCA": 83, "GCC": 997, "GCM": 77, "GCP": 2, "GLK": 1,
        "GMD": 135, "GML": 139, "GMS": 13, "GMU": 167, "GMV": None, "GSS": 16, "GTO": 52,
        "PCC": 349, "PCS": 224, "PET": 8, "PFS": 18, "PIN": 224, "PKP": 6,
        "PLS": 23, "PMS": 5, "PPE": 5, "PSD": 0, "PWU": 3,
        "UAA": 92, "UAI": 36, "UBM": 25, "UBP": 97, "UBR": 994, "UBS": 98,
        "UDC": 11, "UDT": 283, "UIP": 178, "ULL": 3108, "USB": 29, "USC": 30, "USF": 30,
    },
    "fop": {
        "AOA": 58, "AOL": 56, "AOM": 32, "AOS": 24, "ARA": 3340,
        "BAL": 34, "BAS": 6, "BEF": 1, "BGF": 527, "BPF": 95, "BUB": 177, "BUF": 26,
        "GCA": 107, "GCC": 841, "GCM": 107, "GCP": 23, "GLK": 0,
        "GMD": 13, "GML": None, "GMS": 9, "GMU": 17, "GMV": None, "GSS": 755, "GTO": 75,
        "PCC": 1083, "PCS": 23, "PET": 1, "PFS": 13, "PIN": 23, "PKP": 2,
        "PLS": 37, "PMS": 12, "PPE": 9, "PSD": 0, "PWU": 8,
        "UAA": 76, "UAI": 35, "UBM": 21, "UBP": 134, "UBR": 2653, "UBS": 137,
        "UDC": 14, "UDT": 174, "UIP": 181, "ULL": 2138, "USB": 25, "USC": 19, "USF": 32,
    },
    "graphchi": {
        "AOA": 110, "AOL": 160, "AOM": 24, "AOS": 16, "ARA": 2737,
        "BAL": 2204, "BAS": 1, "BEF": 12, "BGF": 9217, "BPF": 43, "BUB": 8, "BUF": 1,
        "GCA": 113, "GCC": 1262, "GCM": 108, "GCP": 2, "GLK": 0,
        "GMD": 175, "GML": 1183, "GMS": 141, "GMU": 179, "GMV": 1123, "GSS": 382, "GTO": 38,
        "PCC": 276, "PCS": 323, "PET": 3, "PFS": 14, "PIN": 323, "PKP": 1,
        "PLS": 5, "PMS": 10, "PPE": 9, "PSD": 1, "PWU": 2,
        "UAA": 112, "UAI": 35, "UBM": 19, "UBP": 5, "UBR": 704, "UBS": 5,
        "UDC": 3, "UDT": 45, "UIP": 234, "ULL": 1746, "USB": 38, "USC": 192, "USF": 4,
    },
    "h2": {
        "AOA": 41, "AOL": 64, "AOM": 32, "AOS": 24, "ARA": 11858,
        "BAL": 234, "BAS": 28, "BEF": 7, "BGF": 3677, "BPF": 601, "BUB": 17, "BUF": 2,
        "GCA": 98, "GCC": 552, "GCM": 82, "GCP": 4, "GLK": 0,
        "GMD": 681, "GML": 10201, "GMS": 69, "GMU": 903, "GMV": 20641, "GSS": 38, "GTO": 30,
        "PCC": 87, "PCS": 55, "PET": 2, "PFS": 5, "PIN": 55, "PKP": 0,
        "PLS": 31, "PMS": 40, "PPE": 24, "PSD": 1, "PWU": 2,
        "UAA": 127, "UAI": 24, "UBM": 40, "UBP": 29, "UBR": 920, "UBS": 30,
        "UDC": 16, "UDT": 476, "UIP": 135, "ULL": 4315, "USB": 43, "USC": 140, "USF": 17,
    },
    "h2o": {
        "AOA": 142, "AOL": 152, "AOM": 24, "AOS": 16, "ARA": 5740,
        "BAL": 231, "BAS": 31, "BEF": 6, "BGF": 3002, "BPF": 142, "BUB": 87, "BUF": 11,
        "GCA": 112, "GCC": 5118, "GCM": 111, "GCP": 12, "GLK": 17,
        "GMD": 72, "GML": 2543, "GMS": 29, "GMU": 73, "GMV": None, "GSS": 249, "GTO": 187,
        "PCC": 207, "PCS": 57, "PET": 3, "PFS": 9, "PIN": 57, "PKP": 4,
        "PLS": 11, "PMS": 21, "PPE": 4, "PSD": 2, "PWU": 4,
        "UAA": 102, "UAI": 32, "UBM": 41, "UBP": 29, "UBR": 1126, "UBS": 30,
        "UDC": 23, "UDT": 499, "UIP": 89, "ULL": 8506, "USB": 53, "USC": 102, "USF": 18,
    },
    "jme": {
        "AOA": 42, "AOL": 56, "AOM": 24, "AOS": 24, "ARA": 54,
        "BAL": 0, "BAS": 0, "BEF": 4, "BGF": 26, "BPF": 10, "BUB": 34, "BUF": 4,
        "GCA": 24, "GCC": 31, "GCM": 24, "GCP": 0, "GLK": 0,
        "GMD": 29, "GML": 29, "GMS": 29, "GMU": 29, "GMV": None, "GSS": 0, "GTO": 12,
        "PCC": 72, "PCS": 1, "PET": 7, "PFS": 0, "PIN": 1, "PKP": 8,
        "PLS": 0, "PMS": 0, "PPE": 3, "PSD": 0, "PWU": 1,
        "UAA": 2, "UAI": 1, "UBM": 19, "UBP": 89, "UBR": 1226, "UBS": 90,
        "UDC": 11, "UDT": 96, "UIP": 204, "ULL": 1558, "USB": 27, "USC": 1, "USF": 32,
    },
    "jython": {
        "AOA": 37, "AOL": 48, "AOM": 32, "AOS": 16, "ARA": 1462,
        "BAL": 39, "BAS": 13, "BEF": 8, "BGF": 256, "BPF": 83, "BUB": 149, "BUF": 29,
        "GCA": 104, "GCC": 3457, "GCM": 100, "GCP": 7, "GLK": 0,
        "GMD": 25, "GML": 25, "GMS": 25, "GMU": 31, "GMV": None, "GSS": 2024, "GTO": 139,
        "PCC": 211, "PCS": 277, "PET": 3, "PFS": 20, "PIN": 277, "PKP": 1,
        "PLS": 1, "PMS": 0, "PPE": 5, "PSD": 1, "PWU": 9,
        "UAA": 102, "UAI": 32, "UBM": 17, "UBP": 85, "UBR": 1105, "UBS": 86,
        "UDC": 9, "UDT": 78, "UIP": 268, "ULL": 1160, "USB": 20, "USC": 35, "USF": 21,
    },
    "kafka": {
        "AOA": 54, "AOL": 56, "AOM": 32, "AOS": 16, "ARA": 803,
        "BAL": 1, "BAS": 0, "BEF": 1, "BGF": 183, "BPF": 55, "BUB": 159, "BUF": 28,
        "GCA": 86, "GCC": 221, "GCM": 86, "GCP": 0, "GLK": 0,
        "GMD": 201, "GML": 345, "GMS": 157, "GMU": 208, "GMV": None, "GSS": 0, "GTO": 19,
        "PCC": 255, "PCS": 34, "PET": 6, "PFS": 1, "PIN": 34, "PKP": 25,
        "PLS": 0, "PMS": 0, "PPE": 3, "PSD": 1, "PWU": 3,
        "UAA": 19, "UAI": 13, "UBM": 26, "UBP": 30, "UBR": 547, "UBS": 31,
        "UDC": 27, "UDT": 230, "UIP": 127, "ULL": 6819, "USB": 30, "USC": 20, "USF": 43,
    },
    "luindex": {
        "AOA": 211, "AOL": 88, "AOM": 32, "AOS": 24, "ARA": 841,
        "BAL": 33, "BAS": 1, "BEF": 3, "BGF": 1179, "BPF": 306, "BUB": 54, "BUF": 5,
        "GCA": 93, "GCC": 1459, "GCM": 100, "GCP": 1, "GLK": 0,
        "GMD": 29, "GML": 37, "GMS": 13, "GMU": 31, "GMV": None, "GSS": 56, "GTO": 76,
        "PCC": 201, "PCS": 61, "PET": 3, "PFS": 18, "PIN": 61, "PKP": 2,
        "PLS": 38, "PMS": 2, "PPE": 3, "PSD": 1, "PWU": 2,
        "UAA": 90, "UAI": 25, "UBM": 31, "UBP": 109, "UBR": 3280, "UBS": 112,
        "UDC": 6, "UDT": 66, "UIP": 263, "ULL": 930, "USB": 36, "USC": 4, "USF": 12,
    },
    "lusearch": {
        "AOA": 75, "AOL": 88, "AOM": 24, "AOS": 24, "ARA": 23556,
        "BAL": 252, "BAS": 126, "BEF": 5, "BGF": 12289, "BPF": 3863, "BUB": 26, "BUF": 3,
        "GCA": 89, "GCC": 22408, "GCM": 84, "GCP": 32, "GLK": 0,
        "GMD": 19, "GML": 109, "GMS": 5, "GMU": 21, "GMV": None, "GSS": 2159, "GTO": 1211,
        "PCC": 172, "PCS": 202, "PET": 2, "PFS": 11, "PIN": 202, "PKP": 7,
        "PLS": 19, "PMS": 9, "PPE": 34, "PSD": 3, "PWU": 8,
        "UAA": 87, "UAI": 56, "UBM": 20, "UBP": 40, "UBR": 596, "UBS": 41,
        "UDC": 12, "UDT": 154, "UIP": 149, "ULL": 2830, "USB": 29, "USC": 198, "USF": 23,
    },
    "pmd": {
        "AOA": 32, "AOL": 48, "AOM": 24, "AOS": 16, "ARA": 6721,
        "BAL": 82, "BAS": 1, "BEF": 4, "BGF": 1719, "BPF": 583, "BUB": 95, "BUF": 15,
        "GCA": 133, "GCC": 781, "GCM": 144, "GCP": 16, "GLK": 5,
        "GMD": 191, "GML": 3519, "GMS": 7, "GMU": 269, "GMV": None, "GSS": 467, "GTO": 32,
        "PCC": 179, "PCS": 74, "PET": 1, "PFS": 11, "PIN": 74, "PKP": 1,
        "PLS": 31, "PMS": 19, "PPE": 10, "PSD": 1, "PWU": 7,
        "UAA": 112, "UAI": 47, "UBM": 35, "UBP": 38, "UBR": 1295, "UBS": 39,
        "UDC": 16, "UDT": 258, "UIP": 109, "ULL": 4478, "USB": 40, "USC": 155, "USF": 21,
    },
    "spring": {
        "AOA": 70, "AOL": 200, "AOM": 32, "AOS": 24, "ARA": 10849,
        "BAL": 11, "BAS": 2, "BEF": 2, "BGF": 395, "BPF": 94, "BUB": 170, "BUF": 26,
        "GCA": 94, "GCC": 2770, "GCM": 83, "GCP": 12, "GLK": 0,
        "GMD": 55, "GML": 65, "GMS": 43, "GMU": 70, "GMV": None, "GSS": 397, "GTO": 283,
        "PCC": 162, "PCS": 110, "PET": 2, "PFS": 8, "PIN": 110, "PKP": 7,
        "PLS": 6, "PMS": 20, "PPE": 36, "PSD": 1, "PWU": 2,
        "UAA": 87, "UAI": 30, "UBM": 28, "UBP": 60, "UBR": 1475, "UBS": 61,
        "UDC": 13, "UDT": 392, "UIP": 122, "ULL": 4264, "USB": 32, "USC": 100, "USF": 32,
    },
    "sunflow": {
        # Published through GTO; the tail of sunflow's table is truncated in
        # our source text and synthesized from Table 2 and the prose.
        "AOA": 40, "AOL": 48, "AOM": 48, "AOS": 24, "ARA": 10518,
        "BAL": 2204, "BAS": 2, "BEF": 3, "BGF": 32087, "BPF": 3200, "BUB": 20, "BUF": 1,
        "GCA": 113, "GCC": 14139, "GCM": 113, "GCP": 20, "GLK": 0,
        "GMD": 29, "GML": 149, "GMS": 5, "GMU": 31, "GMV": None, "GSS": 6329, "GTO": 711,
        "PCC": 172, "PCS": 150, "PET": 3, "PFS": 16, "PIN": 150, "PKP": 1,
        "PLS": -2, "PMS": 5, "PPE": 87, "PSD": 13, "PWU": 6,
        "UAA": 98, "UAI": 19, "UBM": 30, "UBP": 21, "UBR": 2380, "UBS": 24,
        "UDC": 10, "UDT": 120, "UIP": 160, "ULL": 2400, "USB": 47, "USC": 250, "USF": 5,
    },
    "tomcat": {
        # Table 2 row published; remainder synthesized (SYNTHESIZED).
        "AOA": 50, "AOL": 64, "AOM": 32, "AOS": 24, "ARA": 2000,
        "BAL": 20, "BAS": 2, "BEF": 3, "BGF": 400, "BPF": 80, "BUB": 120, "BUF": 20,
        "GCA": 95, "GCC": 1500, "GCM": 95, "GCP": 3, "GLK": 0,
        "GMD": 20, "GML": 60, "GMS": 9, "GMU": 24, "GMV": None, "GSS": 60, "GTO": 150,
        "PCC": 150, "PCS": 40, "PET": 4, "PFS": 2, "PIN": 40, "PKP": 19,
        "PLS": 3, "PMS": 2, "PPE": 12, "PSD": 1, "PWU": 2,
        "UAA": 14, "UAI": 4, "UBM": 25, "UBP": 44, "UBR": 584, "UBS": 45,
        "UDC": 18, "UDT": 300, "UIP": 110, "ULL": 5000, "USB": 28, "USC": 60, "USF": 45,
    },
    "tradebeans": {
        # Table 2 row published; remainder synthesized.  tradebeans lacks
        # the bytecode-instrumentation metrics (35 dimensions, the fewest).
        "AOA": None, "AOL": None, "AOM": None, "AOS": None, "ARA": 1500,
        "BAL": None, "BAS": None, "BEF": None, "BGF": None, "BPF": None,
        "BUB": None, "BUF": None,
        "GCA": 100, "GCC": 800, "GCM": 98, "GCP": 5, "GLK": 26,
        "GMD": 110, "GML": 600, "GMS": 30, "GMU": 141, "GMV": None, "GSS": 100, "GTO": 50,
        "PCC": 200, "PCS": 70, "PET": 1, "PFS": 17, "PIN": 70, "PKP": 2,
        "PLS": 8, "PMS": 5, "PPE": 8, "PSD": 1, "PWU": 6,
        "UAA": 144, "UAI": 42, "UBM": 27, "UBP": 38, "UBR": 1187, "UBS": 39,
        "UDC": 15, "UDT": 250, "UIP": 115, "ULL": 3500, "USB": 30, "USC": 70, "USF": 38,
    },
    "tradesoap": {
        # Table 2 row published; remainder synthesized; lacks bytecode
        # metrics like tradebeans.
        "AOA": None, "AOL": None, "AOM": None, "AOS": None, "ARA": 2500,
        "BAL": None, "BAS": None, "BEF": None, "BGF": None, "BPF": None,
        "BUB": None, "BUF": None,
        "GCA": 98, "GCC": 1200, "GCM": 96, "GCP": 6, "GLK": 6,
        "GMD": 90, "GML": 500, "GMS": 25, "GMU": 115, "GMV": None, "GSS": 150, "GTO": 80,
        "PCC": 220, "PCS": 80, "PET": 1, "PFS": 16, "PIN": 80, "PKP": 2,
        "PLS": 6, "PMS": 4, "PPE": 10, "PSD": 2, "PWU": 5,
        "UAA": 147, "UAI": 34, "UBM": 26, "UBP": 73, "UBR": 1087, "UBS": 74,
        "UDC": 14, "UDT": 240, "UIP": 120, "ULL": 3300, "USB": 29, "USC": 80, "USF": 35,
    },
    "xalan": {
        # Table 2 row published; remainder synthesized from Section 6.4's
        # description: low IPC driven by poor locality — very high data
        # cache, LLC and DTLB miss rates, sensitive to LLC size.
        "AOA": 45, "AOL": 56, "AOM": 32, "AOS": 24, "ARA": 6000,
        "BAL": 50, "BAS": 5, "BEF": 4, "BGF": 800, "BPF": 200, "BUB": 60, "BUF": 8,
        "GCA": 90, "GCC": 3000, "GCM": 88, "GCP": 15, "GLK": 7,
        "GMD": 13, "GML": 100, "GMS": 5, "GMU": 17, "GMV": None, "GSS": 800, "GTO": 400,
        "PCC": 180, "PCS": 90, "PET": 1, "PFS": 12, "PIN": 90, "PKP": 14,
        "PLS": 28, "PMS": 15, "PPE": 40, "PSD": 1, "PWU": 1,
        "UAA": 101, "UAI": 13, "UBM": 32, "UBP": 39, "UBR": 785, "UBS": 39,
        "UDC": 25, "UDT": 520, "UIP": 94, "ULL": 7000, "USB": 38, "USC": 180, "USF": 36,
    },
    "zxing": {
        # Table 2 row published; remainder synthesized.  zxing has the
        # highest tenth-iteration memory leakage in the suite (GLK 120).
        "AOA": 65, "AOL": 80, "AOM": 32, "AOS": 24, "ARA": 3000,
        "BAL": 100, "BAS": 10, "BEF": 5, "BGF": 1500, "BPF": 300, "BUB": 70, "BUF": 10,
        "GCA": 105, "GCC": 900, "GCM": 102, "GCP": 8, "GLK": 120,
        "GMD": 100, "GML": 300, "GMS": 40, "GMU": 127, "GMV": None, "GSS": 200, "GTO": 60,
        "PCC": 250, "PCS": 60, "PET": 1, "PFS": -1, "PIN": 60, "PKP": 5,
        "PLS": 10, "PMS": 8, "PPE": 25, "PSD": 2, "PWU": 7,
        "UAA": 77, "UAI": 42, "UBM": 24, "UBP": 52, "UBR": 374, "UBS": 52,
        "UDC": 13, "UDT": 200, "UIP": 140, "ULL": 2900, "USB": 31, "USC": 90, "USF": 18,
    },
}

BENCHMARK_NAMES = tuple(sorted(BENCHMARK_STATS))


def stats_for(name: str) -> Stats:
    """The published nominal statistics record for ``name``."""
    try:
        return dict(BENCHMARK_STATS[name])
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}"
        ) from None


def value(name: str, metric: str) -> Optional[float]:
    """One metric value for one benchmark (``None`` if unavailable)."""
    stats = stats_for(name)
    if metric not in stats:
        raise KeyError(f"unknown metric {metric!r}")
    return stats[metric]
