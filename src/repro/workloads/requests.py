"""Request replay for the latency-sensitive workloads.

Implements the DaCapo Chopin event engine described in Section 4.4:

- the request stream is pre-determined (deterministic, seeded);
- each of ``workers`` threads consumes consecutive requests, so within a
  thread each request's start time is dictated by the completion of the
  one before;
- every event's start and end times are recorded for latency analysis.

Requests are replayed over the :class:`~repro.jvm.timeline.Timeline` a
simulated iteration produced: a request's wall-clock duration is its
sampled service time stretched across every stop-the-world pause,
allocation stall, and contention-dilated concurrent span it overlaps —
which is precisely the "user-experienced latency" the paper argues should
be measured instead of GC pause times.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.jvm.timeline import MutatorClock, Timeline
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class EventRecord:
    """Start and end times of every event in one run, in seconds."""

    starts: np.ndarray
    ends: np.ndarray

    def __post_init__(self) -> None:
        if self.starts.shape != self.ends.shape:
            raise ValueError("starts and ends must have the same shape")
        if self.starts.size and np.any(self.ends < self.starts):
            raise ValueError("every event must end at or after its start")

    @property
    def count(self) -> int:
        return int(self.starts.size)

    @property
    def latencies(self) -> np.ndarray:
        """Simple per-event latencies (end - start)."""
        return self.ends - self.starts

    @property
    def duration(self) -> float:
        """Span from the first start to the last end."""
        if self.count == 0:
            return 0.0
        return float(self.ends.max() - self.starts.min())


def sample_service_times(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample the pre-determined request stream's service times.

    Log-normal with the workload's configured sigma, with the mean pinned
    so the request stream occupies the workers for the length of one
    iteration.
    """
    profile = spec.requests
    if profile is None:
        raise ValueError(f"{spec.name} is not latency-sensitive")
    mean = spec.mean_service_time_s()
    mu = math.log(mean) - profile.service_sigma**2 / 2.0
    return rng.lognormal(mean=mu, sigma=profile.service_sigma, size=profile.count)


def replay(spec: WorkloadSpec, timeline: Timeline, rng: np.random.Generator) -> EventRecord:
    """Replay the workload's request stream over a simulated timeline."""
    profile = spec.requests
    if profile is None:
        raise ValueError(f"{spec.name} is not latency-sensitive")
    services = sample_service_times(spec, rng)
    clock = MutatorClock(timeline)

    starts = np.empty(profile.count)
    ends = np.empty(profile.count)
    # Min-heap of (next-free wall time, worker id): the next request always
    # goes to the worker that frees up first.
    workers = [(0.0, w) for w in range(profile.workers)]
    heapq.heapify(workers)
    for i, service in enumerate(services):
        free_at, worker = heapq.heappop(workers)
        start = free_at
        end = clock.advance(start, float(service))
        starts[i] = start
        ends[i] = end
        heapq.heappush(workers, (end, worker))
    return EventRecord(starts=starts, ends=ends)
