"""Workload specifications: everything the simulator needs to know about a
benchmark.

A :class:`WorkloadSpec` is the simulator-facing distillation of a DaCapo
Chopin workload.  Most fields are derived directly from the paper's
published nominal statistics (see :mod:`repro.workloads.nominal_data`); the
registry (:mod:`repro.workloads.registry`) performs that derivation so the
mapping from paper statistic to model parameter lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.jvm.barriers import WorkloadOperationRates
from repro.jvm.environment import EnvironmentSensitivity
from repro.jvm.objects import ObjectSizeDistribution


@dataclass(frozen=True)
class RequestProfile:
    """How a latency-sensitive workload issues requests.

    Mirrors the DaCapo design (Section 4.4): a pre-determined set of
    ``count`` requests consumed by ``workers`` threads, each worker taking
    the next request as soon as its previous one completes.
    """

    count: int
    workers: int
    #: Log-space sigma of the log-normal service-time distribution.
    service_sigma: float = 0.7

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a request profile needs at least one request")
        if self.workers < 1:
            raise ValueError("a request profile needs at least one worker")
        if self.service_sigma < 0:
            raise ValueError("service sigma cannot be negative")


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark workload as the simulator sees it."""

    name: str
    description: str
    #: Intrinsic wall-clock seconds of one warmed-up iteration (PET).
    execution_time_s: float
    #: Allocation rate in MB per second of mutator progress (ARA).
    alloc_rate_mb_s: float
    #: Long-lived live set, MB (derived from GMD).
    live_mb: float
    #: Nominal minimum heap, default config with compressed oops (GMD), MB.
    minheap_mb: float
    #: Nominal minimum heap without compressed oops (GMU), MB.
    minheap_nocomp_mb: float
    #: Average hardware threads busy with application work (from PPE).
    cpu_cores: float
    #: Fraction of fresh allocation surviving a young collection.
    survival_rate: float = 0.10
    #: Fraction of survivors promoted to the old generation per young GC.
    promotion_fraction: float = 0.25
    #: Relative run-to-run noise (PSD / 100).
    run_noise: float = 0.01
    #: First-iteration slowdown from cold JIT (derived from PIN/PCS).
    warmup_excess: float = 0.35
    #: Iterations to reach within 1.5 % of peak (PWU).
    warmup_iterations: int = 3
    #: Per-iteration live-set growth fraction (GLK / 100 / 10).
    leak_rate: float = 0.0
    #: Iterations per invocation; the harness times the last (paper: -n 5).
    default_iterations: int = 5
    #: Object demographics for heap-level analyses.
    object_sizes: Optional[ObjectSizeDistribution] = None
    #: Environment sensitivities (memory speed, LLC, frequency, compiler).
    sensitivities: EnvironmentSensitivity = field(default_factory=EnvironmentSensitivity)
    #: Reference-operation rates (BPF/BAS/BGF/BAL); None when the workload
    #: lacks bytecode statistics (tradebeans, tradesoap).
    operation_rates: Optional[WorkloadOperationRates] = None
    #: Workload input size this spec describes (small/default/large/vlarge).
    size: str = "default"
    #: Request profile; present exactly for the nine latency-sensitive
    #: workloads.
    requests: Optional[RequestProfile] = None
    #: True for the eight workloads new in Chopin.
    new_in_chopin: bool = False
    #: Heap multiples (of GMD) the standard sweep evaluates.
    sweep_multiples: Tuple[float, ...] = field(
        default=(1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0)
    )

    def __post_init__(self) -> None:
        if self.execution_time_s <= 0:
            raise ValueError(f"{self.name}: execution time must be positive")
        if self.alloc_rate_mb_s < 0:
            raise ValueError(f"{self.name}: allocation rate cannot be negative")
        if self.live_mb <= 0:
            raise ValueError(f"{self.name}: live set must be positive")
        if self.minheap_mb <= 0:
            raise ValueError(f"{self.name}: minimum heap must be positive")
        if self.minheap_nocomp_mb < self.minheap_mb * 0.5:
            raise ValueError(
                f"{self.name}: uncompressed minheap implausibly small "
                f"({self.minheap_nocomp_mb} vs {self.minheap_mb})"
            )
        if self.cpu_cores < 0.25:
            raise ValueError(f"{self.name}: cpu_cores must be at least 0.25")
        if not 0.0 <= self.survival_rate <= 1.0:
            raise ValueError(f"{self.name}: survival rate out of range")
        if not 0.0 <= self.promotion_fraction <= 1.0:
            raise ValueError(f"{self.name}: promotion fraction out of range")

    @property
    def latency_sensitive(self) -> bool:
        return self.requests is not None

    def heap_mb_for(self, multiple: float) -> float:
        """Heap size for a multiple of the nominal minimum heap
        (Recommendation H2: heap sizes in multiples of min heap)."""
        if multiple <= 0:
            raise ValueError("heap multiple must be positive")
        return multiple * self.minheap_mb

    def mean_service_time_s(self) -> float:
        """Mean request service time that keeps all workers busy for the
        length of one iteration."""
        if self.requests is None:
            raise ValueError(f"{self.name} is not latency-sensitive")
        return self.execution_time_s * self.requests.workers / self.requests.count
