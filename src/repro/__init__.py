"""repro - a reproduction of *Rethinking Java Performance Analysis*
(Blackburn et al., ASPLOS 2025).

The package implements the DaCapo Chopin methodology suite over a
simulated JVM:

- :mod:`repro.jvm` - the substrate: heap, machine model, the five
  OpenJDK 21 production collector models (Serial, Parallel, G1,
  Shenandoah, ZGC), and the vectorized batch kernel
  (:func:`simulate_batch`) that runs a whole heap-factor row in one
  struct-of-arrays pass.
- :mod:`repro.workloads` - the 22 workload models parameterized from the
  paper's published nominal statistics, including the nine
  latency-sensitive request-driven workloads.
- :mod:`repro.core` - the methodologies: lower-bound overhead (LBO),
  simple and metered latency, minimum-heap search, nominal statistics,
  and principal components analysis.
- :mod:`repro.harness` - the experiment runner and the pre-packaged
  experiments behind every figure and table of the paper.
- :mod:`repro.observability` - the JFR-style flight recorder: typed
  events, metrics, and Chrome-trace export.
- :mod:`repro.planner` - the adaptive sweep planner: curve models fit
  from completed cells, deterministic acquisition policies, CV-based
  cell grading, and gmean collector ranking.
- :mod:`repro.resilience` - retries, timeouts, checkpoint/resume, and
  deterministic fault injection for production-scale sweeps.
- :mod:`repro.service` - the long-running sweep service behind ``chopin
  serve``: an HTTP/JSON job queue over the engine with a sharded
  multi-tenant result cache.

Quickstart::

    from repro import registry, lbo_experiment

    spec = registry.workload("lusearch")
    curves = lbo_experiment(spec)
    print(curves.point("wall", "G1", 2.0).overhead.mean)
"""

from repro.core.characterize import characterize, spearman_rank_correlation
from repro.core.compare import bootstrap_ci, compare_collectors
from repro.core.insights import format_insights, insights_for
from repro.core.latency import (
    latency_report,
    metered_latencies,
    simple_latencies,
    synthetic_starts,
)
from repro.core.lbo import RunCosts, costs_from_iteration, geomean_curves, lbo_curves
from repro.core.minheap import MinHeapResult, find_min_heap
from repro.core.nominal import METRICS, format_report, score_benchmark
from repro.core.pca import determinant_metrics, suite_pca
from repro.core.stats import confidence_interval_95, geometric_mean
from repro.harness.engine import (
    Cell,
    EngineStats,
    ExecutionEngine,
    Hole,
    LogSink,
    PartialBatch,
    ProgressSink,
    ResultCache,
    cell_key,
)
from repro.harness.experiments import (
    Campaign,
    ChaosDrill,
    SupervisedSweep,
    TracedSweep,
    chaos_drill,
    heap_timeseries,
    latency_experiment,
    lbo_experiment,
    minheap_experiment,
    run_campaign,
    suite_lbo,
    supervised_sweep,
    trace_sweep,
)
from repro.resilience import (
    CellExecutionError,
    CheckpointJournal,
    CircuitBreaker,
    CostModel,
    FaultInjector,
    FaultSpec,
    NullInjector,
    RetryPolicy,
    Supervisor,
    compact_journal,
    scan_cache,
    verify_cells,
)
from repro.observability import (
    MetricsRegistry,
    NullRecorder,
    Recorder,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.harness.perfdiff import (
    DiffReport,
    diff_artifacts,
    load_artifact,
    resolve_artifacts,
)
from repro.harness.plans import (
    PLAN_CROSSOVER_TOLERANCE,
    PLAN_KINDS,
    AdaptivePlan,
    AdaptiveResult,
    AdaptiveRound,
    ExperimentPlan,
    LatencyRun,
    SuiteLbo,
    grid_crossovers,
    plan_adaptive,
    plan_latency,
    plan_lbo,
    plan_minheap,
    run_adaptive,
    run_plan,
)
from repro.planner import (
    CellGrade,
    CollectorScore,
    CurveModel,
    LatencyPlanner,
    MinHeapPlanner,
    Planner,
    crossover_points,
    grade_cell,
    rank_collectors,
    render_ranking,
    score_collector,
)
from repro.harness.config import HarnessConfig, engine_from_config, harness_config
from repro.harness.runner import RunConfig, measure
from repro.harness.configs import EXPERIMENTS, run_experiment
from repro.harness.export import write_gc_log_csv, write_latency_csv
from repro.jvm.batch import (
    BATCH_TOLERANCE,
    BatchCell,
    BatchResult,
    BatchSpec,
    CellOutcome,
    batch_scalars_close,
    simulate_batch,
)
from repro.jvm.collectors import (
    COLLECTOR_NAMES,
    COLLECTORS,
    UnknownCollectorError,
    resolve_collector,
)
from repro.jvm.environment import EnvironmentProfile, EnvironmentSensitivity
from repro.jvm.heap import Heap, OutOfMemoryError
from repro.jvm.simulator import simulate_iteration, simulate_run
from repro.jvm.telemetry import (
    FIDELITIES,
    FIDELITY_AGGREGATE,
    FIDELITY_FULL,
    AggregateTelemetry,
    FidelityError,
    FullTelemetry,
    resolve_fidelity,
)
from repro.observability import RecorderLike
from repro.service import (
    JobQueue,
    JobSpec,
    ServiceClient,
    ServiceError,
    ShardedResultCache,
    SweepService,
    service_from_config,
)
from repro.workloads import registry
from repro.workloads.registry import all_workloads, available_sizes, latency_workloads, workload

__version__ = "1.0.0"

__all__ = [
    "AdaptivePlan",
    "AdaptiveResult",
    "AdaptiveRound",
    "AggregateTelemetry",
    "BATCH_TOLERANCE",
    "BatchCell",
    "BatchResult",
    "BatchSpec",
    "COLLECTORS",
    "COLLECTOR_NAMES",
    "Campaign",
    "Cell",
    "CellGrade",
    "CellOutcome",
    "CellExecutionError",
    "ChaosDrill",
    "CheckpointJournal",
    "CircuitBreaker",
    "CollectorScore",
    "CostModel",
    "CurveModel",
    "DiffReport",
    "EXPERIMENTS",
    "EngineStats",
    "EnvironmentProfile",
    "EnvironmentSensitivity",
    "ExecutionEngine",
    "ExperimentPlan",
    "FIDELITIES",
    "FIDELITY_AGGREGATE",
    "FIDELITY_FULL",
    "FaultInjector",
    "FaultSpec",
    "FidelityError",
    "FullTelemetry",
    "HarnessConfig",
    "Heap",
    "Hole",
    "JobQueue",
    "JobSpec",
    "LatencyPlanner",
    "LatencyRun",
    "LogSink",
    "METRICS",
    "MetricsRegistry",
    "MinHeapPlanner",
    "MinHeapResult",
    "NullInjector",
    "NullRecorder",
    "OutOfMemoryError",
    "PLAN_CROSSOVER_TOLERANCE",
    "PLAN_KINDS",
    "PartialBatch",
    "Planner",
    "ProgressSink",
    "Recorder",
    "RecorderLike",
    "ResultCache",
    "RetryPolicy",
    "RunConfig",
    "RunCosts",
    "ServiceClient",
    "ServiceError",
    "ShardedResultCache",
    "SuiteLbo",
    "SupervisedSweep",
    "Supervisor",
    "SweepService",
    "TracedSweep",
    "UnknownCollectorError",
    "__version__",
    "all_workloads",
    "available_sizes",
    "batch_scalars_close",
    "bootstrap_ci",
    "cell_key",
    "chaos_drill",
    "characterize",
    "chrome_trace",
    "compact_journal",
    "compare_collectors",
    "confidence_interval_95",
    "costs_from_iteration",
    "crossover_points",
    "determinant_metrics",
    "diff_artifacts",
    "engine_from_config",
    "find_min_heap",
    "format_insights",
    "format_report",
    "geomean_curves",
    "geometric_mean",
    "grade_cell",
    "grid_crossovers",
    "harness_config",
    "heap_timeseries",
    "insights_for",
    "latency_experiment",
    "latency_report",
    "latency_workloads",
    "lbo_curves",
    "lbo_experiment",
    "load_artifact",
    "measure",
    "metered_latencies",
    "minheap_experiment",
    "plan_adaptive",
    "plan_latency",
    "plan_lbo",
    "plan_minheap",
    "rank_collectors",
    "registry",
    "render_ranking",
    "resolve_artifacts",
    "resolve_collector",
    "resolve_fidelity",
    "run_adaptive",
    "run_campaign",
    "run_experiment",
    "run_plan",
    "score_collector",
    "scan_cache",
    "score_benchmark",
    "service_from_config",
    "simple_latencies",
    "simulate_batch",
    "simulate_iteration",
    "simulate_run",
    "spearman_rank_correlation",
    "suite_lbo",
    "suite_pca",
    "supervised_sweep",
    "synthetic_starts",
    "trace_sweep",
    "validate_chrome_trace",
    "verify_cells",
    "workload",
    "write_chrome_trace",
    "write_gc_log_csv",
    "write_jsonl",
    "write_latency_csv",
]
