"""Legacy setup shim: metadata lives in pyproject.toml.

Present so that ``pip install -e .`` works in offline environments whose
setuptools cannot build PEP 660 editable wheels (see pyproject.toml).
"""

from setuptools import setup

setup()
