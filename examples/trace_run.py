"""Flight-record a sweep and a single invocation, end to end.

The observability subsystem mirrors the paper's toolchain — JVMTI pause
capture, GC logs, perf counters — as a JFR-style flight recorder.  This
example records at both granularities:

1. an engine-level sweep (one Perfetto track per cell, GC pauses nested
   inside, cache hit/miss counters) via ``trace_sweep``, run twice to
   show cache hits appearing as zero-work spans;
2. a single ``simulate_run`` invocation at full iteration granularity
   (iteration spans, JIT warmup overhead, every pause/stall).

Open the written ``.json`` files at https://ui.perfetto.dev.
"""

import os

from repro import (
    MetricsRegistry,
    Recorder,
    RunConfig,
    registry,
    simulate_run,
    trace_sweep,
    write_chrome_trace,
)

CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".trace-cache")
OUT_DIR = os.path.dirname(__file__)


def traced(label):
    from repro import ExecutionEngine

    engine = ExecutionEngine(cache_dir=CACHE_DIR, recorder=Recorder())
    session = trace_sweep(
        registry.workload("lusearch"),
        collectors=("G1", "Shenandoah", "ZGC"),
        multiples=(1.5, 2.0, 3.0),
        config=CONFIG,
        engine=engine,
    )
    stats = session.stats
    print(
        f"{label}: {stats.cells} cells — {stats.executed} simulated, "
        f"{stats.hits} cache hits ({stats.hit_rate:.0%} hit rate, "
        f"{stats.negative_hits} negative)"
    )
    return session


def main():
    # Cold sweep: every cell simulated; warm sweep: zero-work hit spans.
    cold = traced("cold sweep")
    warm = traced("warm sweep")

    cold_path = write_chrome_trace(cold.recorder.events(), os.path.join(OUT_DIR, "trace_cold.json"))
    warm_path = write_chrome_trace(warm.recorder.events(), os.path.join(OUT_DIR, "trace_warm.json"))
    print(f"\nwrote {cold_path} and {warm_path} (open at https://ui.perfetto.dev)")

    # Aggregate view of the cold recording: pause percentiles, hit rate.
    metrics = MetricsRegistry()
    metrics.ingest(cold.recorder.events())
    print("\nmetrics from the cold sweep:")
    print(metrics.render())

    # Single-invocation recording at iteration granularity.
    spec = registry.workload("lusearch")
    recorder = Recorder()
    simulate_run(spec, "G1", spec.heap_mb_for(2.0), iterations=3, recorder=recorder)
    path = write_chrome_trace(recorder.events(), os.path.join(OUT_DIR, "trace_invocation.json"))
    kinds = sorted({type(e).__name__ for e in recorder.events()})
    print(f"\nsingle invocation: {len(recorder.events())} events ({', '.join(kinds)})")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
