"""User-experienced latency versus GC-pause proxies (paper Section 4.4).

This example makes the paper's methodological argument concrete on a
simulated run of the h2 database workload:

1. it prints the *GC pause* statistics a naive evaluation would report,
2. the *MMU* curve Cheng & Blelloch proposed instead, and
3. DaCapo Chopin's *simple* and *metered* request latency — showing how
   pauses understate what users actually experience, and how metering
   exposes the queueing (backlog) effect of delays.

    python examples/latency_analysis.py [benchmark] [heap_multiple]
"""

import sys

import numpy as np

from repro import RunConfig, registry
from repro.core.latency import metered_latencies, mmu_curve, simple_latencies
from repro.harness.experiments import latency_experiment
from repro.harness.runner import measure
from repro.jvm.collectors import COLLECTOR_NAMES

CONFIG = RunConfig(invocations=2, iterations=3, duration_scale=0.2)
WINDOWS = (0.01, 0.1, 1.0)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "h2"
    heap = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    spec = registry.workload(name)
    if not spec.latency_sensitive:
        raise SystemExit(f"{name} is not latency-sensitive; try one of "
                         f"{[s.name for s in registry.latency_workloads()]}")

    print(f"== {spec.name} at {heap}x heap ==\n")
    for collector in COLLECTOR_NAMES:
        m = measure(spec, collector, spec.heap_mb_for(heap), CONFIG)
        timed = m.results[0]
        pauses = timed.timeline.pauses
        durations = np.array([p.duration for p in pauses]) if pauses else np.array([0.0])
        mmu = mmu_curve(pauses, timed.wall_s, WINDOWS)

        run = latency_experiment(spec, collector, heap, CONFIG)
        simple = simple_latencies(run.events)
        metered = metered_latencies(run.events, None)

        print(f"{collector}:")
        print(f"  naive pause view : {len(pauses)} pauses, "
              f"max {durations.max() * 1e3:.2f} ms, "
              f"mean {durations.mean() * 1e3:.2f} ms")
        print("  MMU              : "
              + ", ".join(f"{w * 1e3:g}ms->{mmu[w]:.2f}" for w in WINDOWS))
        print(f"  simple latency   : p50 {np.percentile(simple, 50) * 1e3:8.3f} ms, "
              f"p99.9 {np.percentile(simple, 99.9) * 1e3:8.3f} ms")
        print(f"  metered latency  : p50 {np.percentile(metered, 50) * 1e3:8.3f} ms, "
              f"p99.9 {np.percentile(metered, 99.9) * 1e3:8.3f} ms")
        print()

    print("Note: collectors with tiny pauses (ZGC) can still show poor")
    print("metered latency — allocation stalls and CPU interference never")
    print("appear in the pause log.  That is Recommendation L1.")


if __name__ == "__main__":
    main()
