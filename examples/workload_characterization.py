"""Workload characterization with nominal statistics and PCA (Sections 5.1
and 5.2).

Prints the ``-p`` style nominal-statistics report for a workload, then the
suite-wide diversity analysis: PCA projections, variance explained, and
the most determinant metrics — the machinery behind the paper's Figure 4
and Table 2.

    python examples/workload_characterization.py [benchmark]
"""

import sys

from repro.core.nominal import format_report
from repro.core.pca import determinant_metrics, suite_pca
from repro.harness.report import format_pca_projection


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lusearch"
    print(format_report(name))
    print()

    result = suite_pca(n_components=4)
    print(f"PCA over the {len(result.metrics)} metrics with complete coverage")
    print("variance explained: "
          + ", ".join(f"PC{i + 1} {r * 100:.0f}%"
                      for i, r in enumerate(result.explained_variance_ratio)))
    print()
    print(format_pca_projection(result, (0, 1)))
    print()
    print(format_pca_projection(result, (2, 3)))
    print()
    print("twelve most determinant metrics:",
          ", ".join(determinant_metrics(result, count=12)))
    x, y = result.projection_of(name)[:2]
    print(f"\n{name} sits at PC1={x:+.2f}, PC2={y:+.2f} — distance from the")
    print("other workloads in this space is the paper's diversity argument.")


if __name__ == "__main__":
    main()
