"""Quickstart: simulate a benchmark, measure GC overhead, read latency.

Runs the lusearch workload (Apache Lucene search; the suite's highest
allocation rate) under two collectors, prints the wall/task costs, a
lower-bound-overhead comparison, and the user-experienced latency report.

    python examples/quickstart.py
"""

from repro import RunConfig, registry
from repro.harness.experiments import latency_experiment, lbo_experiment
from repro.harness.report import format_lbo_curves

# Scaled-down iterations: everything below runs in a few seconds.  Use
# duration_scale=1.0 for full-length (paper-equivalent) runs.
CONFIG = RunConfig(invocations=3, iterations=3, duration_scale=0.2)


def main() -> None:
    spec = registry.workload("lusearch")
    print(f"workload: {spec.name} — {spec.description}")
    print(f"  nominal min heap (GMD): {spec.minheap_mb:.0f} MB")
    print(f"  allocation rate (ARA):  {spec.alloc_rate_mb_s:.0f} MB/s")
    print()

    # 1. The time-space tradeoff: LBO curves across heap sizes
    #    (Recommendations H1, O1, O2).
    curves = lbo_experiment(spec, multiples=(1.5, 2.0, 3.0, 6.0), config=CONFIG)
    print(format_lbo_curves(curves, "wall"))
    print()
    print(format_lbo_curves(curves, "task"))
    print()

    # 2. User-experienced latency (Recommendations L1, L2): simple and
    #    metered latency percentiles under G1 at a 2x heap.
    run = latency_experiment(spec, "G1", 2.0, CONFIG)
    print(f"latency, {run.benchmark} with G1 at {run.heap_multiple}x heap "
          f"({run.events.count} requests):")
    for q, value in run.report.simple.items():
        metered = run.report.metered_at(None)[q]
        print(f"  p{q:<8g} simple {value * 1e3:8.3f} ms   metered {metered * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
