"""The time-space tradeoff, end to end (paper Sections 4.2 and 6.2).

For a chosen workload this example:

1. measures each collector's actual minimum heap (the GMD/GMU
   methodology) — showing ZGC's compressed-pointer penalty,
2. sweeps heap sizes expressed as multiples of the nominal minimum
   (Recommendation H2), and
3. prints wall-clock and task-clock LBO curves side by side
   (Recommendations O1/O2), demonstrating why both must be reported.

    python examples/gc_timespace_tradeoff.py [benchmark]
"""

import sys

from repro import RunConfig, registry
from repro.core.minheap import find_min_heap
from repro.harness.experiments import lbo_experiment
from repro.harness.report import format_lbo_curves
from repro.jvm.collectors import COLLECTOR_NAMES
from repro.jvm.heap import OutOfMemoryError

CONFIG = RunConfig(invocations=3, iterations=2, duration_scale=0.1)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "biojava"
    spec = registry.workload(name)
    print(f"== {spec.name}: {spec.description} ==")
    print(f"nominal minimum heaps: GMD={spec.minheap_mb:.0f} MB, "
          f"GMU={spec.minheap_nocomp_mb:.0f} MB (no compressed oops)\n")

    print("measured minimum heaps (binary search until the run completes):")
    for collector in COLLECTOR_NAMES:
        try:
            result = find_min_heap(spec, collector, duration_scale=CONFIG.duration_scale)
        except OutOfMemoryError as exc:
            print(f"  {collector:<11} failed: {exc}")
            continue
        multiple = result.as_multiple_of(spec.minheap_mb)
        print(f"  {collector:<11} {result.min_heap_mb:8.1f} MB  ({multiple:.2f}x GMD)")
    print()

    curves = lbo_experiment(spec, multiples=(1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0), config=CONFIG)
    print(format_lbo_curves(curves, "wall"))
    print()
    print(format_lbo_curves(curves, "task"))
    print()
    print("Note how collectors absent at the smallest multiples simply have")
    print("no data point — the paper's plotting rule for Figure 1.")


if __name__ == "__main__":
    main()
