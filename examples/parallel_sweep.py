"""A cached, parallel Figure-1-style sweep.

Every figure in the paper is a sweep over (workload x collector x
heap-multiple x invocation) cells.  Cells are deterministic functions of
those coordinates, so they can run on every core at once and be memoized
on disk: this example runs the same suite-wide LBO sweep twice through an
ExecutionEngine and shows the second pass costing (almost) nothing.

Try deleting one entry under the cache directory and re-running: only
that cell is recomputed.
"""

import os
import time

from repro import ExecutionEngine, RunConfig, registry, suite_lbo

WORKLOADS = ("fop", "lusearch", "biojava", "avrora", "h2", "spring")
COLLECTORS = ("Serial", "Parallel", "G1", "Shenandoah", "ZGC")
MULTIPLES = (1.25, 2.0, 3.0, 6.0)
CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)

CACHE_DIR = os.path.join(os.path.dirname(__file__), ".sweep-cache")


def sweep(engine):
    specs = [registry.workload(name) for name in WORKLOADS]
    started = time.perf_counter()
    result = suite_lbo(specs, COLLECTORS, MULTIPLES, CONFIG, engine=engine)
    return result, time.perf_counter() - started


def main():
    jobs = os.cpu_count() or 1
    cells = len(WORKLOADS) * len(COLLECTORS) * len(MULTIPLES) * CONFIG.invocations
    print(f"{cells} cells over {jobs} worker processes, cache at {CACHE_DIR}\n")

    cold = ExecutionEngine(jobs=jobs, cache_dir=CACHE_DIR)
    result, cold_s = sweep(cold)
    print(
        f"cold: {cold_s:.2f}s wall ({cold.stats.executed} executed, "
        f"{cold.stats.cached} cached, {cold.stats.oom} infeasible, "
        f"{cold.stats.execute_s:.2f}s of simulation)"
    )

    warm = ExecutionEngine(jobs=jobs, cache_dir=CACHE_DIR)
    rerun, warm_s = sweep(warm)
    print(
        f"warm: {warm_s:.2f}s wall ({warm.stats.executed} executed, "
        f"{warm.stats.cached} cached)"
    )
    assert rerun.geomean_wall == result.geomean_wall  # determinism guarantee

    print("\nGeomean wall-clock LBO at generous heap (6.0x min heap):")
    for collector, points in result.geomean_wall.items():
        at6 = dict(points).get(6.0)
        if at6 is not None:
            print(f"  {collector:<12} {at6:.3f}")


if __name__ == "__main__":
    main()
