"""An adaptive LBO sweep: spend cells where the answer is.

A fixed Figure-1-style grid spends the same effort on every
(collector, heap-multiple) cell, but the *answers* — where two
collectors' overhead curves cross, where the min-heap knee sits, which
collector wins the suite gmean — live in small regions of the grid.
The adaptive planner scouts a few anchor cells per collector, brackets
crossovers by sign change, bisects toward them, refines noisy bracket
endpoints until their confidence intervals tighten, and skips flat
regions entirely.

Every cell it proposes is a cell *of the grid* (same workload,
collector, heap size, invocation, config), so executed cells are
bit-identical to the fixed-grid run and share its cache — the planner
only decides which cells not to run.

Run it plain to watch the propose → execute → refit rounds and the
final gmean collector ranking::

    PYTHONPATH=src python examples/adaptive_sweep.py

Run it with ``--check`` (the CI planner smoke) to also run the full
grid and assert that the adaptive subset reproduces the fixed grid's
LBO crossovers within the documented tolerance at no more than half
the cells::

    PYTHONPATH=src python examples/adaptive_sweep.py --check
"""

import argparse
import sys

from repro import (
    PLAN_CROSSOVER_TOLERANCE,
    ExecutionEngine,
    RunConfig,
    grid_crossovers,
    plan_adaptive,
    registry,
    render_ranking,
    run_adaptive,
)

WORKLOAD = "lusearch"
CONFIG = RunConfig(invocations=2, iterations=2, duration_scale=0.05)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="also run the fixed grid and assert the adaptive run "
        "reproduces its crossovers within tolerance at <= 50%% of cells",
    )
    args = parser.parse_args()

    spec = registry.workload(WORKLOAD)
    plan = plan_adaptive(spec, config=CONFIG)
    print(
        f"{WORKLOAD}: fixed grid {plan.grid_cells} cells "
        f"({len(plan.grid.collectors)} collectors x "
        f"{len(plan.grid.multiples)} heap multiples x "
        f"{CONFIG.invocations} invocations), budget {plan.cell_budget}"
    )

    result = run_adaptive(plan, engine=ExecutionEngine())

    print("\nPropose -> execute -> refit rounds:")
    for rnd in result.rounds:
        print(
            f"  round {rnd.index}: {rnd.reason_summary()} "
            f"-> {rnd.executed} cells ({rnd.budget_left} budget left)"
        )

    print("\nLBO crossovers (heap factors where mean-cost curves cross):")
    for (benchmark, a, b), points in sorted(result.crossovers.items()):
        where = ", ".join(f"{p:.3f}x" for p in points)
        pair = f"{a} / {b}"
        print(f"  {pair:<24} @ {where}")

    ok = sum(1 for grade in result.grades.values() if grade.ok)
    print(f"\nCell grades: {ok}/{len(result.grades)} measured points EXCELLENT/GOOD")

    print("\nSuite gmean collector ranking (lower is better):")
    print(render_ranking(result.ranking))
    if result.unranked:
        print(f"  (unranked, incomplete coverage: {', '.join(result.unranked)})")

    print(
        f"\nadaptive: executed {result.cells_executed} of {result.grid_cells} "
        f"grid cells ({result.savings:.0%} saved) in {len(result.rounds)} rounds"
    )

    if not args.check:
        return 0

    # --check: the CI planner smoke.  The ground truth runs the whole
    # grid through a fresh engine; bit-identity of shared cells means a
    # warm cache would serve both, but a cold engine keeps the check
    # honest.
    print("\ncheck: running the full fixed grid for ground truth ...")
    truth = grid_crossovers(plan.grid, engine=ExecutionEngine())
    failures = []
    if result.cells_executed > plan.grid_cells // 2:
        failures.append(
            f"executed {result.cells_executed} cells, more than half the "
            f"{plan.grid_cells}-cell grid"
        )
    if result.savings < 0.5:
        failures.append(f"savings {result.savings:.0%} below the 50% bar")
    shared = sorted(set(truth) & set(result.crossovers))
    collectors = {c for key in shared for c in key[1:]}
    if len(collectors) < 3:
        failures.append(
            f"crossovers shared with the grid cover only {sorted(collectors)}"
        )
    for key in shared:
        got = result.crossovers[key][0]
        want = truth[key][0]
        status = "ok" if abs(got - want) <= PLAN_CROSSOVER_TOLERANCE else "FAIL"
        pair = f"{key[1]} / {key[2]}"
        print(
            f"  {pair:<24} grid {want:.3f}x adaptive {got:.3f}x "
            f"(|delta| {abs(got - want):.3f} <= {PLAN_CROSSOVER_TOLERANCE}) {status}"
        )
        if status == "FAIL":
            failures.append(
                f"{key}: adaptive {got:.3f}x vs grid {want:.3f}x "
                f"exceeds tolerance {PLAN_CROSSOVER_TOLERANCE}"
            )
    for key in sorted(set(truth) - set(result.crossovers)):
        failures.append(f"{key}: grid crossover at {truth[key]} not found adaptively")
    if failures:
        print("\nplanner smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\nplanner smoke ok: {len(shared)} crossover pairs over "
        f"{len(collectors)} collectors within {PLAN_CROSSOVER_TOLERANCE} "
        f"heap factors at {result.savings:.0%} cells saved"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
