"""Environment sensitivity: the Section 6.1.3 / 6.4 experiment axes.

Re-runs a workload under each perturbed execution environment — slow DRAM,
1/16th last-level cache, frequency boost, forced C2, interpreter-only, and
two other processor designs — and reports the measured slowdowns next to
the suite's published nominal statistics.  This is the `characterize`
machinery the suite ships so users can reproduce its measurements.

    python examples/environment_sensitivity.py [benchmark]
"""

import sys
from dataclasses import replace

from repro import RunConfig, registry
from repro.harness.report import format_table
from repro.harness.runner import measure
from repro.jvm import environment as env
from repro.workloads import nominal_data

CONFIG = RunConfig(invocations=3, iterations=2, duration_scale=0.1)

AXES = (
    ("slow DRAM (DDR5-2000)", env.SLOW_MEMORY, "PMS"),
    ("1/16 last-level cache", env.SMALL_LLC, "PLS"),
    ("forced C2 compilation", env.FORCED_C2, "PCC"),
    ("interpreter only", env.INTERPRETER_ONLY, "PIN"),
    ("ARM Neoverse N1", env.ON_NEOVERSE_N1, "UAA"),
    ("Intel Golden Cove", env.ON_GOLDEN_COVE, "UAI"),
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "h2"
    spec = registry.workload(name)
    heap = spec.heap_mb_for(2.0)
    baseline = measure(spec, "G1", heap, CONFIG).wall.mean

    rows = []
    for label, profile, metric in AXES:
        perturbed = measure(spec, "G1", heap, replace(CONFIG, environment=profile)).wall.mean
        slowdown = 100.0 * (perturbed / baseline - 1.0)
        published = nominal_data.value(name, metric)
        rows.append([label, f"{slowdown:+.1f}%", f"{published:+g}% ({metric})"])
    boosted = measure(spec, "G1", heap, replace(CONFIG, environment=env.BOOSTED)).wall.mean
    rows.append([
        "frequency boost (speedup)",
        f"{100.0 * (baseline / boosted - 1.0):+.1f}%",
        f"{nominal_data.value(name, 'PFS'):+g}% (PFS)",
    ])

    print(f"{spec.name}: measured environment sensitivity vs published nominal statistics\n")
    print(format_table(["environment", "measured", "published"], rows))
    print("\nThe measured column comes from re-running the full experiment")
    print("pipeline under each environment profile — the suite's built-in")
    print("reproduction path for its own characterization data.")


if __name__ == "__main__":
    main()
