"""Statistically sound collector comparison (Recommendation P1).

"An unsound claim can misdirect a field."  This example compares two
collectors on a workload the way the empirical-evaluation literature the
paper builds on demands: repeated invocations, bootstrap confidence
intervals on the performance ratio, and a winner declared only when the
interval excludes 1 — separately for wall clock and task clock, because
(the paper's central point) the two metrics routinely crown different
winners.

    python examples/sound_comparison.py [benchmark] [collectorA] [collectorB]
"""

import sys

from repro import RunConfig, registry
from repro.core.compare import compare_collectors

CONFIG = RunConfig(invocations=8, iterations=3, duration_scale=0.15)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "lusearch"
    a = sys.argv[2] if len(sys.argv) > 2 else "Parallel"
    b = sys.argv[3] if len(sys.argv) > 3 else "Serial"
    spec = registry.workload(bench)

    print(f"comparing {a} vs {b} on {bench} "
          f"({CONFIG.invocations} invocations per configuration)\n")
    for heap in (2.0, 6.0):
        for metric in ("wall", "task"):
            result = compare_collectors(spec, a, b, heap, metric, CONFIG)
            print("  " + result.summary())
        print()

    print("Note how the winner can flip between wall clock and task clock,")
    print("and between heap sizes — the reason Recommendations H1 and O2")
    print("require reporting all of them.")


if __name__ == "__main__":
    main()
