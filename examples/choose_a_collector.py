"""Collector selection under a memory budget and a latency SLO.

A downstream-user scenario the paper's methodology enables: given a
workload, a heap budget (in multiples of its minimum heap), and a tail
latency objective, evaluate every production collector on *all three*
axes the paper insists on — wall clock, task clock (CPU bill), and
user-experienced tail latency — and print a ranked recommendation.

    python examples/choose_a_collector.py [benchmark] [heap_multiple] [slo_ms]
"""

import sys

from repro import RunConfig, registry
from repro.harness.experiments import latency_experiment, lbo_experiment
from repro.harness.report import format_table
from repro.jvm.collectors import COLLECTOR_NAMES

CONFIG = RunConfig(invocations=2, iterations=3, duration_scale=0.2)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "spring"
    heap = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    slo_ms = float(sys.argv[3]) if len(sys.argv) > 3 else 50.0
    spec = registry.workload(name)
    if not spec.latency_sensitive:
        raise SystemExit(f"{name} has no request stream; pick a latency-sensitive workload")

    curves = lbo_experiment(spec, multiples=(heap,), config=CONFIG)
    rows = []
    for collector in COLLECTOR_NAMES:
        if collector not in curves.collectors():
            rows.append([collector, "-", "-", "-", "cannot run in this heap"])
            continue
        wall = curves.point("wall", collector, heap).overhead.mean
        task = curves.point("task", collector, heap).overhead.mean
        run = latency_experiment(spec, collector, heap, CONFIG)
        p999_ms = run.report.metered_at(0.1)[99.9] * 1e3
        verdict = "meets SLO" if p999_ms <= slo_ms else "MISSES SLO"
        rows.append([collector, f"{wall:.2f}x", f"{task:.2f}x", f"{p999_ms:.1f} ms", verdict])

    print(f"{spec.name} at {heap}x min heap ({spec.heap_mb_for(heap):.0f} MB), "
          f"p99.9 metered SLO {slo_ms:g} ms\n")
    print(format_table(
        ["collector", "wall LBO", "task LBO", "p99.9 metered", "verdict"], rows
    ))

    viable = [r for r in rows if r[4] == "meets SLO"]
    if viable:
        best = min(viable, key=lambda r: float(r[2].rstrip("x")))
        print(f"\nrecommendation: {best[0]} — lowest CPU bill among collectors "
              f"meeting the latency objective")
    else:
        print("\nno collector meets the SLO at this heap size: "
              "add memory (Recommendation H1: explore the tradeoff).")


if __name__ == "__main__":
    main()
